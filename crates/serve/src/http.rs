//! Minimal HTTP/1.1 framing over `std::io` — just enough of the protocol
//! for the forecast service and its load generator: request-line + headers
//! parsing, `Content-Length` bodies, keep-alive, and plain-text responses.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors raised while reading one request off a connection.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure (includes read timeouts).
    Io(io::Error),
    /// The bytes on the wire are not a valid HTTP/1.x request.
    Malformed(String),
    /// The declared body exceeds the configured limit.
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::BodyTooLarge(n) => write!(f, "request body of {n} bytes is too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// Whether this is a socket read timeout (idle keep-alive connection).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            HttpError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method, e.g. `GET`.
    pub method: String,
    /// Request path (query string included verbatim).
    pub path: String,
    /// Protocol version token, e.g. `HTTP/1.1`.
    pub version: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.version == "HTTP/1.0"
            || self
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns an error message when the body is not valid UTF-8.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }
}

/// Reads one request. Returns `Ok(None)` on clean EOF before the first
/// byte (the peer closed an idle keep-alive connection).
///
/// # Errors
///
/// [`HttpError::Malformed`] for protocol violations, [`HttpError::Io`] for
/// socket errors (including read timeouts), [`HttpError::BodyTooLarge`]
/// when `Content-Length` exceeds `max_body`.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let request_line = line.trim_end_matches(['\r', '\n']);
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "bad request line: {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!("bad version: {version:?}")));
    }
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        version: version.to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };

    loop {
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Err(HttpError::Malformed("EOF inside headers".into()));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header: {header:?}")));
        };
        req.headers
            .push((name.trim().to_string(), value.trim().to_string()));
        if req.headers.len() > 100 {
            return Err(HttpError::Malformed("too many headers".into()));
        }
    }

    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|e| HttpError::Malformed(format!("bad content-length: {e}")))?;
        if len > max_body {
            return Err(HttpError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// Human-readable reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Splits a request target into `(path, query)`; the query is empty when
/// the target carries none.
pub fn split_target(target: &str) -> (&str, &str) {
    target.split_once('?').unwrap_or((target, ""))
}

/// First value of `key` in a query string (`a=1&b=2`). No percent-decoding:
/// the service's parameter values (tenant names) are restricted to
/// URL-safe characters.
pub fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Writes a complete plain-text response and flushes the writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(
        w,
        status,
        body,
        keep_alive,
        "text/plain; charset=utf-8",
        &[],
    )
}

/// Writes a complete response with an explicit content type and extra
/// headers (e.g. `Allow` on a 405), then flushes the writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_response_with<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_content_length() {
        let req = parse("POST /observe HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(req.body_text().unwrap(), "hello");
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn connection_close_and_http10_end_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(
            parse("garbage\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge(9999))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "hi\n", true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi\n"));
    }

    #[test]
    fn response_with_extra_headers_and_content_type() {
        let mut buf = Vec::new();
        write_response_with(
            &mut buf,
            405,
            "nope\n",
            true,
            "application/json",
            &[("Allow", "POST")],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Allow: POST\r\n"));
        assert!(text.ends_with("\r\n\r\nnope\n"));
    }

    #[test]
    fn target_and_query_helpers() {
        assert_eq!(split_target("/forecast"), ("/forecast", ""));
        assert_eq!(
            split_target("/forecast?tenant=a&x=1"),
            ("/forecast", "tenant=a&x=1")
        );
        assert_eq!(query_param("tenant=a&x=1", "tenant"), Some("a"));
        assert_eq!(query_param("tenant=a&x=1", "x"), Some("1"));
        assert_eq!(query_param("tenant=a", "missing"), None);
        assert_eq!(query_param("", "tenant"), None);
        assert_eq!(query_param("flag&tenant=b", "tenant"), Some("b"));
    }
}
