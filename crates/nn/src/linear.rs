//! Fully-connected (affine) layer.

use crate::{ParamId, ParamStore, Session};
use st_autodiff::Var;
use st_tensor::{xavier_matrix, Matrix, StRng};

/// An affine map `y = x·W + b` applied row-wise to a batch.
///
/// # Examples
///
/// ```
/// use st_nn::{Linear, ParamStore, Session};
/// use st_tensor::{rng, Matrix};
///
/// let mut store = ParamStore::new();
/// let layer = Linear::new(&mut store, &mut rng(0), 3, 2, "head");
/// let mut sess = Session::new(&store);
/// let x = sess.constant(Matrix::ones(5, 3));
/// let y = layer.forward(&mut sess, &store, x);
/// assert_eq!(sess.tape.value(y).shape(), (5, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StRng,
        in_dim: usize,
        out_dim: usize,
        name: &str,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_matrix(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `B × in_dim` batch.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `in_dim`.
    pub fn forward(&self, sess: &mut Session, store: &ParamStore, x: Var) -> Var {
        assert_eq!(
            sess.tape.value(x).cols(),
            self.in_dim,
            "linear layer expects width {}",
            self.in_dim
        );
        let w = sess.var(store, self.w);
        let b = sess.var(store, self.b);
        let xw = sess.tape.matmul(x, w);
        sess.tape.add_bias(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autodiff::check_gradient;
    use st_tensor::rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, &mut rng(1), 2, 3, "l");
        // Overwrite for a deterministic check.
        store.set_value(
            layer.w,
            Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]),
        );
        store.set_value(layer.b, Matrix::from_rows(&[&[10.0, 20.0, 30.0]]));
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = layer.forward(&mut sess, &store, x);
        assert_eq!(
            sess.tape.value(y),
            &Matrix::from_rows(&[&[11.0, 22.0, 30.0]])
        );
    }

    #[test]
    fn gradients_check_against_finite_differences() {
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, &mut rng(2), 3, 2, "l");
        let x0 = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.0, 0.0, -0.5]]);

        let run = |store: &ParamStore| -> (f64, Matrix, Matrix) {
            let mut sess = Session::new(store);
            let x = sess.constant(x0.clone());
            let y = layer.forward(&mut sess, store, x);
            let sq = sess.tape.mul(y, y);
            let loss = sess.tape.sum(sq);
            sess.backward(loss);
            let mut tmp = store.clone();
            tmp.zero_grads();
            sess.write_grads(&mut tmp);
            (
                sess.tape.value(loss)[(0, 0)],
                tmp.grad(layer.w).clone(),
                tmp.grad(layer.b).clone(),
            )
        };
        let (_, gw, gb) = run(&store);

        let res_w = check_gradient(store.value(layer.w), &gw, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(layer.w, m.clone());
            run(&s2).0
        });
        assert!(res_w.passes(1e-5), "weight grad failed: {res_w:?}");

        let res_b = check_gradient(store.value(layer.b), &gb, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(layer.b, m.clone());
            run(&s2).0
        });
        assert!(res_b.passes(1e-5), "bias grad failed: {res_b:?}");
    }

    #[test]
    #[should_panic(expected = "expects width")]
    fn rejects_wrong_width() {
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, &mut rng(3), 4, 2, "l");
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::ones(1, 3));
        let _ = layer.forward(&mut sess, &store, x);
    }
}
