//! Implementation of the `rihgcn` command-line tool.
//!
//! Subcommands (see `rihgcn help` or [`run`]):
//!
//! * `generate` — write a synthetic PeMS-like or Stampede-like dataset to
//!   CSV (the long format of `st_data::read_csv`);
//! * `train` — train RIHGCN on a CSV dataset and save the parameters;
//! * `forecast` — load a trained model and forecast from the dataset's
//!   final history window, printing one CSV row per (node, feature, step);
//! * `impute` — reconstruct all hidden entries of a CSV dataset with a
//!   classical imputer and write the completed CSV;
//! * `evaluate` — train and score RIHGCN plus reference baselines;
//! * `serve` — run the st-serve HTTP forecast service from a
//!   self-contained checkpoint (`train --checkpoint`) or a directory of
//!   checkpoints (`--models DIR`, one tenant per file);
//! * `checkpoint` — `checkpoint info` prints a checkpoint's shapes,
//!   config and normalisation stats.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within the
//! workspace's dependency policy.

#![warn(missing_docs)]

use rihgcn_baselines::{knn_impute, last_observed_fill, matrix_factorization_impute};
use rihgcn_core::{
    evaluate_imputation, evaluate_prediction, fit, fit_with_observer, load_checkpoint, load_params,
    prepare_split, save_checkpoint, save_params, JsonlObserver, OnlineForecaster, RihgcnConfig,
    RihgcnModel, StderrPretty, TrainConfig,
};
use st_data::{
    generate_pems, generate_stampede, read_csv, write_csv, PemsConfig, QualityReport,
    StampedeConfig, TrafficDataset, WindowSampler,
};
use st_graph::RoadNetwork;
use std::collections::HashMap;
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Boxed error type used throughout the CLI.
pub type CliError = Box<dyn Error>;

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Options {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Options {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when a `--key` is missing its value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut out = Options::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                out.flags.insert(key.to_string(), value.clone());
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// String flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid --{key} {v:?}: {e}").into()),
        }
    }
}

/// Usage text shown by `rihgcn help`.
pub const USAGE: &str = "\
rihgcn — traffic forecasting with missing values (RIHGCN, ICDCS'21)

USAGE:
  rihgcn generate --dataset pems|stampede --out data.csv
                  [--nodes N] [--days D] [--missing-rate R] [--seed S]
  rihgcn train    --data data.csv --out model.params
                  [--checkpoint model.ckpt] [--epochs E] [--graphs M]
                  [--lambda L] [--gcn-dim F] [--lstm-dim Q]
                  [--history T] [--horizon H]
                  [--log-format none|pretty|json]
  rihgcn forecast --data data.csv --model model.params
                  [--graphs M] [--gcn-dim F] [--lstm-dim Q]
                  [--history T] [--horizon H]
  rihgcn impute   --data data.csv --method last|knn|mf --out filled.csv
  rihgcn inspect  --data data.csv
  rihgcn evaluate --data data.csv [--epochs E] [--graphs M]
  rihgcn serve    --checkpoint model.ckpt | --models DIR
                  [--addr HOST:PORT] [--addr-file F] [--workers K]
                  [--max-conns C] [--shards S] [--max-models K]
                  [--max-batch B] [--batch-linger-us U]
                  [--watch-stdin true]
                  [--log-format none|pretty|json]
  rihgcn checkpoint info --file model.ckpt
  rihgcn help

`train --checkpoint` writes a self-contained checkpoint (parameters,
config, normalisation stats and graphs) that `serve` loads without the
training CSV; `checkpoint info` prints its shapes, config and stats.
`serve` prints `listening on HOST:PORT` (and writes the bound address
to --addr-file, useful with port 0), then serves POST /observe,
GET /forecast, GET /imputed, GET /healthz, GET /metrics,
GET /debug/trace and POST /admin/shutdown until shut down; with
`--watch-stdin true` it also shuts down on stdin EOF.

`serve --models DIR` loads every *.ckpt in DIR as one tenant per file
(tenant name = file stem); inference routes then take `?tenant=NAME`.
Tenants are FNV-routed across `--shards S` engine shards, checkpoints
can be hot-swapped at runtime (POST /admin/load, POST /admin/unload,
GET /admin/tenants), and `--max-models K` bounds resident models with
LRU eviction. Under a saturated queue each shard answers up to
`--max-batch B` (default 16) distinct windows of one tenant from a
single batched tape run; `--max-batch 1` disables batching, and
`--batch-linger-us U` (default 0) lets a shard hold parked forecasts up
to U microseconds at queue-empty to fill a batch. Per-tenant results
stay bit-identical to a dedicated single-model server at any shard
count, batch bound and linger.

`train --log-format pretty` streams per-epoch progress to stderr;
`json` streams one JSON object per epoch (JSON Lines) instead.

Every command also accepts --threads N to set the worker count of the
parallel kernels (default: ST_NUM_THREADS, else all available cores)
and --trace FILE to record a Chrome trace_event JSON profile of the
run (open in chrome://tracing or Perfetto; ST_OBS=1 enables span
collection without writing a file). Neither changes numerical results:
outputs stay bit-identical for any thread count, traced or not.

Datasets use the long CSV format: node,feature,time,value,observed.
Generated CSVs embed a synthetic road network; externally produced CSVs
are assigned a corridor network over their node count.";

/// Runs the CLI with the given arguments (without the program name),
/// writing human-readable output to `out`.
///
/// # Errors
///
/// Returns an error (already formatted for display) on bad usage, I/O
/// failure or malformed data.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        writeln!(out, "{USAGE}")?;
        return Err("no command given".into());
    };
    let opts = Options::parse(&args[1..])?;
    // Global performance knob; never changes numerical results.
    let threads = opts.get_parsed("threads", 0usize)?;
    if threads > 0 {
        st_par::set_num_threads(threads);
    }
    // Global tracing knob; spans never change numerical results either.
    let trace_path = opts.get("trace").map(str::to_string);
    if trace_path.is_some() {
        st_obs::set_enabled(true);
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts, out),
        "train" => cmd_train(&opts, out),
        "forecast" => cmd_forecast(&opts, out),
        "impute" => cmd_impute(&opts, out),
        "inspect" => cmd_inspect(&opts, out),
        "evaluate" => cmd_evaluate(&opts, out),
        "serve" => cmd_serve(&opts, out),
        "checkpoint" => cmd_checkpoint(&opts, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `rihgcn help`").into()),
    };
    if result.is_ok() {
        if let Some(path) = trace_path {
            let events = st_obs::trace::write_chrome_trace(&path)?;
            writeln!(out, "wrote trace ({events} span events) to {path}")?;
        }
    }
    result
}

/// Builds the epoch observer selected by `--log-format` (`none` is the
/// silent default; `pretty` and `json` stream progress to stderr).
fn train_observer(opts: &Options) -> Result<Box<dyn rihgcn_core::TrainObserver>, CliError> {
    match opts.get("log-format").unwrap_or("none") {
        "none" => Ok(Box::new(rihgcn_core::NullObserver)),
        "pretty" => Ok(Box::new(StderrPretty)),
        "json" => Ok(Box::new(JsonlObserver::new(std::io::stderr()))),
        other => Err(format!("invalid --log-format {other:?} (none|pretty|json)").into()),
    }
}

fn cmd_generate(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let dataset = opts.get("dataset").unwrap_or("pems");
    let path = opts.get("out").ok_or("generate requires --out <file>")?;
    let nodes = opts.get_parsed("nodes", 10usize)?;
    let days = opts.get_parsed("days", 7usize)?;
    let missing = opts.get_parsed("missing-rate", 0.0f64)?;
    let seed = opts.get_parsed("seed", 7u64)?;

    let ds = match dataset {
        "pems" => generate_pems(&PemsConfig {
            num_nodes: nodes,
            num_days: days,
            seed,
            ..Default::default()
        }),
        "stampede" => generate_stampede(&StampedeConfig {
            num_segments: nodes.max(2),
            num_days: days,
            seed,
            ..Default::default()
        }),
        other => return Err(format!("unknown dataset {other:?} (pems|stampede)").into()),
    };
    let ds = if missing > 0.0 {
        ds.with_extra_missing(missing, &mut st_tensor::rng(seed ^ 0xC5))
    } else {
        ds
    };
    write_csv(&ds, BufWriter::new(File::create(path)?))?;
    writeln!(
        out,
        "wrote {} ({} nodes × {} features × {} timestamps, {:.1}% missing)",
        path,
        ds.num_nodes(),
        ds.num_features(),
        ds.num_times(),
        ds.missing_rate() * 100.0
    )?;
    Ok(())
}

fn load_dataset(opts: &Options) -> Result<TrafficDataset, CliError> {
    let path = opts.get("data").ok_or("missing --data <file>")?;
    // Peek the node count to build a stand-in network, then parse for real.
    let probe = read_probe_nodes(path)?;
    let network = RoadNetwork::corridor(probe, 1.2);
    let ds = read_csv(BufReader::new(File::open(path)?), "csv-data", network, 5)?;
    Ok(ds)
}

fn read_probe_nodes(path: &str) -> Result<usize, CliError> {
    use std::io::BufRead;
    let mut max_node = 0usize;
    for line in BufReader::new(File::open(path)?).lines() {
        let line = line?;
        let first = line.split(',').next().unwrap_or("");
        if let Ok(n) = first.trim().parse::<usize>() {
            max_node = max_node.max(n);
        }
    }
    Ok(max_node + 1)
}

fn model_config(opts: &Options, ds: &TrafficDataset) -> Result<RihgcnConfig, CliError> {
    let _ = ds;
    let defaults = RihgcnConfig::default();
    Ok(RihgcnConfig {
        gcn_dim: opts.get_parsed("gcn-dim", 8usize)?,
        lstm_dim: opts.get_parsed("lstm-dim", 16usize)?,
        num_temporal_graphs: opts.get_parsed("graphs", 4usize)?,
        lambda: opts.get_parsed("lambda", 1.0f64)?,
        history: opts.get_parsed("history", defaults.history)?,
        horizon: opts.get_parsed("horizon", 12usize)?,
        ..defaults
    })
}

fn cmd_train(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let model_path = opts.get("out").ok_or("train requires --out <file>")?;
    let ds = load_dataset(opts)?;
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = model_config(opts, &ds)?;
    let sampler = WindowSampler::new(cfg.history, cfg.horizon, 3);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);
    if train.is_empty() {
        return Err("dataset too short for the training window".into());
    }

    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    let tc = TrainConfig {
        max_epochs: opts.get_parsed("epochs", 10usize)?,
        threads: opts.get_parsed("threads", 0usize)?,
        ..Default::default()
    };
    let mut observer = train_observer(opts)?;
    let report = fit_with_observer(&mut model, &train, &val, &tc, observer.as_mut());
    save_params(model.params(), BufWriter::new(File::create(model_path)?))?;
    writeln!(
        out,
        "trained {} epochs (best val loss {:.4}); saved {} parameters to {}",
        report.epochs(),
        report.best_val_loss,
        model.num_parameters(),
        model_path
    )?;
    if let Some(ckpt_path) = opts.get("checkpoint") {
        save_checkpoint(&model, &z, BufWriter::new(File::create(ckpt_path)?))?;
        writeln!(out, "saved self-contained checkpoint to {ckpt_path}")?;
    }
    Ok(())
}

/// Loads the model set for `serve`: one checkpoint as the `default`
/// tenant, or every `*.ckpt` in a `--models` directory with the file stem
/// as the tenant name.
fn load_serve_models(opts: &Options) -> Result<Vec<(String, OnlineForecaster)>, CliError> {
    let load = |path: &std::path::Path| -> Result<OnlineForecaster, CliError> {
        let (model, z) = load_checkpoint(BufReader::new(File::open(path)?))?;
        Ok(OnlineForecaster::new(model, z))
    };
    match (opts.get("checkpoint"), opts.get("models")) {
        (Some(_), Some(_)) => Err("pass either --checkpoint or --models, not both".into()),
        (Some(path), None) => Ok(vec![(
            st_serve::DEFAULT_TENANT.to_string(),
            load(std::path::Path::new(path))?,
        )]),
        (None, Some(dir)) => {
            let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "ckpt"))
                .collect();
            paths.sort();
            let mut models = Vec::new();
            for path in paths {
                let tenant = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or_default()
                    .to_string();
                if !st_serve::valid_tenant(&tenant) {
                    return Err(format!(
                        "checkpoint file {} does not name a valid tenant \
                         (use [A-Za-z0-9._-]{{1,64}}.ckpt)",
                        path.display()
                    )
                    .into());
                }
                models.push((tenant, load(&path)?));
            }
            if models.is_empty() {
                return Err(format!("no *.ckpt files found in {dir}").into());
            }
            Ok(models)
        }
        (None, None) => Err(
            "serve requires --checkpoint <file> or --models <dir> (see `train --checkpoint`)"
                .into(),
        ),
    }
}

fn cmd_serve(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let models = load_serve_models(opts)?;
    let num_models = models.len();

    let cfg = st_serve::ServeConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:8100").to_string(),
        workers: opts.get_parsed("workers", 0usize)?,
        max_connections: opts.get_parsed("max-conns", 64usize)?,
        shards: opts.get_parsed("shards", 1usize)?,
        max_models: opts.get_parsed("max-models", 0usize)?,
        max_batch: opts.get_parsed("max-batch", 16usize)?,
        batch_linger: std::time::Duration::from_micros(opts.get_parsed("batch-linger-us", 0u64)?),
        ..Default::default()
    };
    let shards = cfg.shards.max(1);
    let json_logs = match opts.get("log-format").unwrap_or("none") {
        "json" => true,
        "none" | "pretty" => false,
        other => return Err(format!("invalid --log-format {other:?} (none|pretty|json)").into()),
    };
    let server = st_serve::Server::start_with_models(models, cfg)
        .map_err(|e| format!("failed to start server: {e}"))?;
    let addr = server.local_addr();
    if json_logs {
        writeln!(
            out,
            "{{\"event\":\"listening\",\"addr\":\"{addr}\",\"shards\":{shards},\"models\":{num_models}}}"
        )?;
    } else {
        writeln!(
            out,
            "listening on {addr} ({shards} shards, {num_models} models)"
        )?;
    }
    out.flush()?;
    if let Some(addr_file) = opts.get("addr-file") {
        // Written last so pollers only ever see the complete address.
        std::fs::write(addr_file, format!("{addr}\n"))?;
    }
    if opts.get_parsed("watch-stdin", false)? {
        let handle = server.shutdown_handle();
        std::thread::spawn(move || {
            // Drain stdin; EOF means the parent is gone — shut down.
            let mut sink = Vec::new();
            let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
            handle.shutdown();
        });
    }
    let drained = server.join();
    let observations: usize = drained.iter().map(|(_, online)| online.len()).sum();
    if json_logs {
        writeln!(
            out,
            "{{\"event\":\"stopped\",\"models\":{},\"observations\":{observations}}}",
            drained.len()
        )?;
    } else {
        writeln!(
            out,
            "server stopped after {observations} observations across {} models",
            drained.len()
        )?;
        for (tenant, online) in &drained {
            writeln!(
                out,
                "  tenant {tenant}: {} observations (window version {})",
                online.len(),
                online.window_version()
            )?;
        }
    }
    Ok(())
}

/// `checkpoint info` — print the shapes, config and normalisation stats
/// of a self-contained checkpoint without loading any dataset.
fn cmd_checkpoint(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    match opts.positional().first().map(String::as_str) {
        Some("info") => {}
        other => {
            return Err(format!(
                "unknown checkpoint subcommand {:?} (try `checkpoint info --file model.ckpt`)",
                other.unwrap_or("")
            )
            .into())
        }
    }
    let path = opts
        .get("file")
        .or_else(|| opts.positional().get(1).map(String::as_str))
        .ok_or("checkpoint info requires --file <model.ckpt> (or a positional path)")?;
    let (model, z) = load_checkpoint(BufReader::new(File::open(path)?))?;
    let cfg = model.config();
    writeln!(out, "checkpoint {path}")?;
    writeln!(
        out,
        "nodes {}  features {}  parameters {}",
        model.num_nodes(),
        model.num_features(),
        model.num_parameters()
    )?;
    writeln!(
        out,
        "history {}  horizon {}  slots_per_day {}",
        cfg.history,
        cfg.horizon,
        model.slots_per_day()
    )?;
    writeln!(
        out,
        "gcn_dim {}  lstm_dim {}  cheb_k {}  temporal_graphs {}",
        cfg.gcn_dim,
        cfg.lstm_dim,
        cfg.cheb_k,
        model.temporal_graphs().len()
    )?;
    writeln!(
        out,
        "lambda {}  tau {}  epsilon {}  seed {}",
        cfg.lambda, cfg.tau, cfg.epsilon, cfg.seed
    )?;
    let geo = model.geo_adjacency();
    writeln!(out, "geo adjacency {}x{}", geo.rows(), geo.cols())?;
    for (interval, m) in model.temporal_graphs() {
        writeln!(
            out,
            "temporal graph [{}, {}) {}x{}",
            interval.start,
            interval.end,
            m.rows(),
            m.cols()
        )?;
    }
    let join = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    writeln!(out, "zscore mean {}", join(z.mean()))?;
    writeln!(out, "zscore std {}", join(z.std()))?;
    Ok(())
}

fn cmd_forecast(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let model_path = opts
        .get("model")
        .ok_or("forecast requires --model <file>")?;
    let ds = load_dataset(opts)?;
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = model_config(opts, &ds)?;
    let history = cfg.history;
    let horizon = cfg.horizon;
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    load_params(model.params_mut(), BufReader::new(File::open(model_path)?))?;

    // Forecast from the final history window of the test portion.
    let sampler = WindowSampler::new(history, horizon, 1);
    let all = norm.test;
    if all.num_times() < history + horizon {
        return Err("test split too short for one window".into());
    }
    let sample = sampler.window_at(&all, all.num_times() - history - horizon);
    let output = model.forward(&sample);

    writeln!(out, "node,feature,step,forecast")?;
    for (step, pred) in output.predictions.iter().enumerate() {
        let raw = z.invert_matrix(pred);
        for node in 0..raw.rows() {
            for feature in 0..raw.cols() {
                writeln!(out, "{node},{feature},{step},{:.4}", raw[(node, feature)])?;
            }
        }
    }
    Ok(())
}

fn cmd_impute(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let method = opts.get("method").unwrap_or("knn");
    let path = opts.get("out").ok_or("impute requires --out <file>")?;
    let ds = load_dataset(opts)?;
    let filled = match method {
        "last" => last_observed_fill(&ds.values, &ds.mask),
        "knn" => knn_impute(&ds.values, &ds.mask, opts.get_parsed("k", 3usize)?),
        "mf" => matrix_factorization_impute(
            &ds.values,
            &ds.mask,
            opts.get_parsed("rank", 4usize)?,
            opts.get_parsed("iters", 15usize)?,
            opts.get_parsed("seed", 1u64)?,
        ),
        other => return Err(format!("unknown imputer {other:?} (last|knn|mf)").into()),
    };
    let completed = TrafficDataset::new(
        format!("{}-imputed", ds.name),
        filled,
        st_tensor::Tensor3::ones(ds.num_nodes(), ds.num_features(), ds.num_times()),
        ds.network.clone(),
        ds.interval_minutes,
    );
    write_csv(&completed, BufWriter::new(File::create(path)?))?;
    writeln!(
        out,
        "imputed {:.1}% of entries with {method}; wrote {path}",
        ds.missing_rate() * 100.0
    )?;
    Ok(())
}

fn cmd_inspect(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = load_dataset(opts)?;
    let report = QualityReport::compute(&ds);
    writeln!(
        out,
        "dataset: {} nodes × {} features × {} timestamps",
        ds.num_nodes(),
        ds.num_features(),
        ds.num_times()
    )?;
    write!(out, "{}", report.render())?;
    Ok(())
}

fn cmd_evaluate(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = load_dataset(opts)?;
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = model_config(opts, &ds)?;
    let sampler = WindowSampler::new(cfg.history, cfg.horizon, 3);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);
    let test = sampler.sample(&norm.test);
    if train.is_empty() || test.is_empty() {
        return Err("dataset too short to evaluate".into());
    }

    let ha = rihgcn_baselines::HistoricalAverage::fit(&norm.train, cfg.horizon);
    let ha_m = evaluate_prediction(&ha, &test, &z);

    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    let tc = TrainConfig {
        max_epochs: opts.get_parsed("epochs", 10usize)?,
        threads: opts.get_parsed("threads", 0usize)?,
        ..Default::default()
    };
    fit(&mut model, &train, &val, &tc);
    let pred = evaluate_prediction(&model, &test, &z);
    let imp = evaluate_imputation(&model, &test, &z);

    writeln!(out, "method,mae,rmse")?;
    writeln!(out, "HA,{:.4},{:.4}", ha_m.mae, ha_m.rmse)?;
    writeln!(out, "RIHGCN,{:.4},{:.4}", pred.mae, pred.rmse)?;
    writeln!(out, "RIHGCN-imputation,{:.4},{:.4}", imp.mae, imp.rmse)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_flags_and_positionals() {
        let opts = Options::parse(&args(&["pos1", "--key", "value", "pos2"])).unwrap();
        assert_eq!(opts.positional(), &["pos1", "pos2"]);
        assert_eq!(opts.get("key"), Some("value"));
        assert_eq!(opts.get_parsed("missing", 5usize).unwrap(), 5);
    }

    #[test]
    fn options_reject_dangling_flag() {
        assert!(Options::parse(&args(&["--key"])).is_err());
    }

    #[test]
    fn options_reject_bad_parse() {
        let opts = Options::parse(&args(&["--n", "abc"])).unwrap();
        assert!(opts.get_parsed("n", 0usize).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let mut buf = Vec::new();
        run(&args(&["help"]), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("generate"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut buf = Vec::new();
        let err = run(&args(&["frobnicate"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn no_command_errors_with_usage() {
        let mut buf = Vec::new();
        let err = run(&[], &mut buf).unwrap_err();
        assert!(err.to_string().contains("no command"));
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn generate_and_impute_round_trip() {
        let dir = std::env::temp_dir().join("rihgcn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let filled = dir.join("filled.csv");
        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "3",
                "--days",
                "1",
                "--missing-rate",
                "0.3",
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(data.exists());

        run(
            &args(&[
                "impute",
                "--data",
                data.to_str().unwrap(),
                "--method",
                "last",
                "--out",
                filled.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(filled.exists());
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("wrote"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_reports_quality() {
        let dir = std::env::temp_dir().join("rihgcn-cli-inspect");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "3",
                "--days",
                "1",
                "--missing-rate",
                "0.4",
            ]),
            &mut buf,
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &args(&["inspect", "--data", data.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("missing rate"), "{text}");
        assert!(text.contains("daily autocorrelation"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_documented_and_validated() {
        let mut buf = Vec::new();
        run(&args(&["help"]), &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("--threads"));
        let mut buf = Vec::new();
        let err = run(&args(&["help", "--threads", "abc"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("--threads"));
    }

    #[test]
    fn train_checkpoint_then_serve_end_to_end() {
        let dir = std::env::temp_dir().join("rihgcn-cli-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let params = dir.join("model.params");
        let ckpt = dir.join("model.ckpt");
        let addr_file = dir.join("addr.txt");

        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "4",
                "--days",
                "1",
                "--missing-rate",
                "0.2",
            ]),
            &mut buf,
        )
        .unwrap();
        run(
            &args(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--out",
                params.to_str().unwrap(),
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--epochs",
                "1",
                "--gcn-dim",
                "4",
                "--lstm-dim",
                "6",
                "--graphs",
                "2",
                "--history",
                "4",
                "--horizon",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(ckpt.exists());
        assert!(String::from_utf8(buf).unwrap().contains("checkpoint"));

        // Serve from the checkpoint on an ephemeral port in a thread.
        let serve_args = args(&[
            "serve",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
        ]);
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            run(&serve_args, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let mut client =
            st_serve::HttpClient::connect(&addr, std::time::Duration::from_secs(10)).unwrap();
        let health = client.get_ok("/healthz").unwrap();
        assert!(health.contains("nodes 4"), "health: {health}");
        client.post_ok("/admin/shutdown", "").unwrap();
        let log = server.join().unwrap();
        assert!(log.contains("listening on"), "log: {log}");
        assert!(log.contains("server stopped"), "log: {log}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_info_and_multi_tenant_serve() {
        let dir = std::env::temp_dir().join("rihgcn-cli-multitenant");
        let models_dir = dir.join("models");
        std::fs::create_dir_all(&models_dir).unwrap();
        let data = dir.join("data.csv");
        let ckpt = dir.join("model.ckpt");
        let addr_file = dir.join("addr.txt");

        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "4",
                "--days",
                "1",
                "--missing-rate",
                "0.2",
            ]),
            &mut buf,
        )
        .unwrap();
        run(
            &args(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--out",
                dir.join("model.params").to_str().unwrap(),
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--epochs",
                "1",
                "--gcn-dim",
                "4",
                "--lstm-dim",
                "6",
                "--graphs",
                "2",
                "--history",
                "4",
                "--horizon",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();

        // `checkpoint info` prints shapes, config and zscore stats.
        let mut buf = Vec::new();
        run(
            &args(&["checkpoint", "info", "--file", ckpt.to_str().unwrap()]),
            &mut buf,
        )
        .unwrap();
        let info = String::from_utf8(buf).unwrap();
        assert!(info.contains("nodes 4"), "info: {info}");
        assert!(info.contains("history 4  horizon 2"), "info: {info}");
        assert!(
            info.contains("gcn_dim 4  lstm_dim 6  cheb_k"),
            "info: {info}"
        );
        assert!(info.contains("slots_per_day"), "info: {info}");
        assert!(info.contains("geo adjacency 4x4"), "info: {info}");
        assert!(info.contains("zscore mean"), "info: {info}");
        assert!(info.contains("zscore std"), "info: {info}");

        // A subcommand other than `info` is rejected.
        let mut buf = Vec::new();
        let err = run(&args(&["checkpoint", "frobnicate"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("checkpoint info"), "{err}");

        // Two tenants from the same checkpoint bytes, served sharded.
        std::fs::copy(&ckpt, models_dir.join("east.ckpt")).unwrap();
        std::fs::copy(&ckpt, models_dir.join("west.ckpt")).unwrap();
        let serve_args = args(&[
            "serve",
            "--models",
            models_dir.to_str().unwrap(),
            "--shards",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
        ]);
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            run(&serve_args, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let mut client =
            st_serve::HttpClient::connect(&addr, std::time::Duration::from_secs(10)).unwrap();
        let listing = client.get_ok("/admin/tenants").unwrap();
        assert!(listing.starts_with("shards 2 models 2"), "{listing}");
        for tenant in ["east", "west"] {
            let expected = format!("tenant {tenant} shard {}", st_serve::shard_of(tenant, 2));
            assert!(listing.contains(&expected), "{listing}");
            let health = client.get_ok(&format!("/healthz?tenant={tenant}")).unwrap();
            assert!(health.contains("nodes 4"), "health: {health}");
        }
        client.post_ok("/admin/shutdown", "").unwrap();
        let log = server.join().unwrap();
        assert!(
            log.contains("listening on") && log.contains("(2 shards, 2 models)"),
            "log: {log}"
        );
        assert!(log.contains("server stopped"), "log: {log}");
        assert!(log.contains("tenant east:"), "log: {log}");
        assert!(log.contains("tenant west:"), "log: {log}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_conflicting_model_sources() {
        let mut buf = Vec::new();
        let err = run(
            &args(&["serve", "--checkpoint", "a.ckpt", "--models", "dir"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
    }

    #[test]
    fn train_with_trace_writes_valid_chrome_json() {
        let dir = std::env::temp_dir().join("rihgcn-cli-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let trace = dir.join("trace.json");
        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "3",
                "--days",
                "1",
                "--missing-rate",
                "0.2",
            ]),
            &mut buf,
        )
        .unwrap();

        let mut buf = Vec::new();
        run(
            &args(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--out",
                dir.join("model.params").to_str().unwrap(),
                "--epochs",
                "1",
                "--gcn-dim",
                "3",
                "--lstm-dim",
                "4",
                "--graphs",
                "2",
                "--history",
                "4",
                "--horizon",
                "2",
                "--log-format",
                "json",
                "--trace",
                trace.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("wrote trace"), "output: {text}");

        let doc = std::fs::read_to_string(&trace).unwrap();
        let stats = st_obs::trace::validate_chrome_trace(&doc).expect("valid Chrome trace");
        assert!(stats.span_events > 0, "trace has spans");
        for prefix in ["core.", "autodiff.", "tensor.", "nn."] {
            assert!(
                stats.has_prefix(prefix),
                "trace must contain {prefix}* spans; names: {:?}",
                stats.names
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_rejects_unknown_log_format() {
        let dir = std::env::temp_dir().join("rihgcn-cli-logfmt");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let mut buf = Vec::new();
        run(
            &args(&[
                "generate",
                "--dataset",
                "pems",
                "--out",
                data.to_str().unwrap(),
                "--nodes",
                "3",
                "--days",
                "1",
            ]),
            &mut buf,
        )
        .unwrap();
        let err = run(
            &args(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--out",
                dir.join("m.params").to_str().unwrap(),
                "--log-format",
                "yaml",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--log-format"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_requires_a_checkpoint() {
        let mut buf = Vec::new();
        let err = run(&args(&["serve"]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("--checkpoint"));
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let mut buf = Vec::new();
        let err = run(
            &args(&["generate", "--dataset", "nope", "--out", "/tmp/x.csv"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown dataset"));
    }
}
