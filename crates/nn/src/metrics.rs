//! Evaluation metrics: MAE and RMSE with optional masking.
//!
//! The paper reports mean absolute error and root mean squared error for
//! both prediction and imputation; imputation is scored only on hidden (or
//! held-out) entries, so every metric here takes an optional `{0,1}` weight
//! mask.

use st_tensor::Matrix;

/// Incremental accumulator for MAE/RMSE over many batches.
///
/// # Examples
///
/// ```
/// use st_nn::ErrorAccum;
/// use st_tensor::Matrix;
///
/// let mut acc = ErrorAccum::new();
/// acc.update(&Matrix::from_rows(&[&[1.0]]), &Matrix::from_rows(&[&[3.0]]), None);
/// assert_eq!(acc.mae(), 2.0);
/// assert_eq!(acc.rmse(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorAccum {
    abs_sum: f64,
    sq_sum: f64,
    count: f64,
}

impl ErrorAccum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the errors between `prediction` and `target`, optionally
    /// weighted by a `{0,1}` mask (entries with mask 0 are skipped).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn update(&mut self, prediction: &Matrix, target: &Matrix, mask: Option<&Matrix>) {
        assert_eq!(
            prediction.shape(),
            target.shape(),
            "prediction/target shape mismatch"
        );
        if let Some(m) = mask {
            assert_eq!(m.shape(), target.shape(), "mask shape mismatch");
        }
        for i in 0..prediction.len() {
            let w = mask.map_or(1.0, |m| m.as_slice()[i]);
            if w == 0.0 {
                continue;
            }
            let e = prediction.as_slice()[i] - target.as_slice()[i];
            self.abs_sum += w * e.abs();
            self.sq_sum += w * e * e;
            self.count += w;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorAccum) {
        self.abs_sum += other.abs_sum;
        self.sq_sum += other.sq_sum;
        self.count += other.count;
    }

    /// Number of scored entries.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Mean absolute error; `0.0` when nothing was scored.
    pub fn mae(&self) -> f64 {
        if self.count > 0.0 {
            self.abs_sum / self.count
        } else {
            0.0
        }
    }

    /// Root mean squared error; `0.0` when nothing was scored.
    pub fn rmse(&self) -> f64 {
        if self.count > 0.0 {
            (self.sq_sum / self.count).sqrt()
        } else {
            0.0
        }
    }

    /// Final `(MAE, RMSE)` pair.
    pub fn summary(&self) -> Metrics {
        Metrics {
            mae: self.mae(),
            rmse: self.rmse(),
        }
    }
}

/// A reported `(MAE, RMSE)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAE {:.4} / RMSE {:.4}", self.mae, self.rmse)
    }
}

/// One-shot MAE between two matrices (optionally masked).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mae(prediction: &Matrix, target: &Matrix, mask: Option<&Matrix>) -> f64 {
    let mut acc = ErrorAccum::new();
    acc.update(prediction, target, mask);
    acc.mae()
}

/// One-shot mean absolute percentage error (in %), skipping entries whose
/// target magnitude is below `floor` (MAPE is undefined near zero).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mape(prediction: &Matrix, target: &Matrix, mask: Option<&Matrix>, floor: f64) -> f64 {
    assert_eq!(
        prediction.shape(),
        target.shape(),
        "prediction/target shape mismatch"
    );
    if let Some(m) = mask {
        assert_eq!(m.shape(), target.shape(), "mask shape mismatch");
    }
    let mut acc = 0.0;
    let mut count = 0.0;
    for i in 0..prediction.len() {
        let w = mask.map_or(1.0, |m| m.as_slice()[i]);
        let t = target.as_slice()[i];
        if w == 0.0 || t.abs() < floor {
            continue;
        }
        acc += w * ((prediction.as_slice()[i] - t) / t).abs();
        count += w;
    }
    if count > 0.0 {
        100.0 * acc / count
    } else {
        0.0
    }
}

/// One-shot RMSE between two matrices (optionally masked).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn rmse(prediction: &Matrix, target: &Matrix, mask: Option<&Matrix>) -> f64 {
    let mut acc = ErrorAccum::new();
    acc.update(prediction, target, mask);
    acc.rmse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_rmse_known_values() {
        let p = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = Matrix::from_rows(&[&[2.0, 2.0], &[1.0, 4.0]]);
        assert_eq!(mae(&p, &t, None), 0.75); // (1+0+2+0)/4
        assert!((rmse(&p, &t, None) - (5.0_f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mask_restricts_scoring() {
        let p = Matrix::from_rows(&[&[1.0, 100.0]]);
        let t = Matrix::from_rows(&[&[2.0, 0.0]]);
        let m = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert_eq!(mae(&p, &t, Some(&m)), 1.0);
        assert_eq!(rmse(&p, &t, Some(&m)), 1.0);
    }

    #[test]
    fn empty_mask_yields_zero() {
        let p = Matrix::ones(2, 2);
        let t = Matrix::zeros(2, 2);
        let m = Matrix::zeros(2, 2);
        assert_eq!(mae(&p, &t, Some(&m)), 0.0);
        assert_eq!(rmse(&p, &t, Some(&m)), 0.0);
    }

    #[test]
    fn accumulator_merges_batches() {
        let mut a = ErrorAccum::new();
        a.update(
            &Matrix::from_rows(&[&[1.0]]),
            &Matrix::from_rows(&[&[0.0]]),
            None,
        );
        let mut b = ErrorAccum::new();
        b.update(
            &Matrix::from_rows(&[&[3.0]]),
            &Matrix::from_rows(&[&[0.0]]),
            None,
        );
        a.merge(&b);
        assert_eq!(a.count(), 2.0);
        assert_eq!(a.mae(), 2.0);
        assert!((a.rmse() - (5.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_known_values_and_floor() {
        let p = Matrix::from_rows(&[&[110.0, 90.0, 1.0]]);
        let t = Matrix::from_rows(&[&[100.0, 100.0, 0.001]]);
        // Third entry is below the floor and skipped: (10% + 10%) / 2.
        assert!((mape(&p, &t, None, 0.01) - 10.0).abs() < 1e-9);
        let m = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        assert!((mape(&p, &t, Some(&m), 0.01) - 10.0).abs() < 1e-9);
        // Nothing scoreable.
        let zeros = Matrix::zeros(1, 3);
        assert_eq!(mape(&p, &zeros, None, 0.01), 0.0);
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = Matrix::from_rows(&[&[1.0, 5.0, -2.0]]);
        let t = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        assert!(rmse(&p, &t, None) >= mae(&p, &t, None));
    }

    #[test]
    fn display_formats_both() {
        let m = Metrics {
            mae: 1.0,
            rmse: 2.0,
        };
        let s = format!("{m}");
        assert!(s.contains("1.0000") && s.contains("2.0000"));
    }
}
