//! The HTTP front end: accept loop, fixed worker pool, routing, and
//! graceful shutdown.
//!
//! ```text
//! accept thread ──► bounded conn queue ──► worker 0..K ──► engine thread
//!      │ (max-connections guard)              │  (bounded request queue,
//!      ▼                                      ▼   micro-batched)
//!   503 when full                      HTTP parse / route / respond
//! ```
//!
//! Shutdown is SIGTERM-equivalent without signal handling (std has none):
//! anything holding a [`ShutdownHandle`] — the `/admin/shutdown` route, a
//! stdin-EOF watcher, a test — flips the shutdown flag and wakes the
//! acceptor with a self-connection. The acceptor stops taking connections
//! and drops the queue; workers drain in-flight connections and exit; the
//! engine exits once the last worker drops its handle.

use crate::engine::{
    self, EngineError, EngineHandle, EngineRequest, ModelInfo, ENGINE_REPLY_TIMEOUT,
};
use crate::http::{self, HttpError, Request};
use crate::metrics::{Metrics, Route};
use crate::wire;
use rihgcn_core::OnlineForecaster;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the HTTP service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8100` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections. `0` follows the `st-par`
    /// convention: `ST_NUM_THREADS`, else available parallelism.
    pub workers: usize,
    /// Maximum connections queued or in flight before new ones get 503.
    pub max_connections: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Bound of the engine's request queue (backpressure depth).
    pub queue_depth: usize,
    /// Requests served per connection before it is recycled.
    pub max_requests_per_connection: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 8 << 20,
            queue_depth: 128,
            max_requests_per_connection: 10_000,
        }
    }
}

/// State shared between the acceptor, the workers and shutdown handles.
struct Shared {
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Clonable handle that triggers graceful shutdown from anywhere.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Requests a graceful shutdown (idempotent): stop accepting, drain
    /// in-flight connections, stop the engine.
    pub fn shutdown(&self) {
        self.0.trigger_shutdown();
    }
}

/// A running forecast service.
pub struct Server {
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: Option<JoinHandle<OnlineForecaster>>,
}

impl Server {
    /// Binds the listener, spawns the engine and worker threads, and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Returns any error binding the address or spawning threads.
    pub fn start(online: OnlineForecaster, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::other(format!("unresolvable address {}", cfg.addr)))?,
        )?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            addr,
        });
        let metrics = Arc::new(Metrics::new());
        let info = ModelInfo::of(&online);
        let (engine_handle, engine_join) =
            engine::spawn(online, Arc::clone(&metrics), cfg.queue_depth);

        let workers_n = if cfg.workers > 0 {
            cfg.workers
        } else {
            st_par::num_threads()
        };
        let active = Arc::new(AtomicUsize::new(0));
        let (conn_tx, conn_rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(cfg.max_connections.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let conn_rx = Arc::clone(&conn_rx);
            let engine_handle = engine_handle.clone();
            let metrics = Arc::clone(&metrics);
            let shared = Arc::clone(&shared);
            let active = Arc::clone(&active);
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("st-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Take one connection, then release the lock before
                        // serving it so the other workers keep draining.
                        let stream = conn_rx.lock().expect("conn queue lock").recv();
                        let Ok(stream) = stream else { break };
                        serve_connection(stream, &engine_handle, &metrics, &shared, &info, &cfg);
                        active.fetch_sub(1, Ordering::SeqCst);
                    })?,
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let max_connections = cfg.max_connections;
            std::thread::Builder::new()
                .name("st-serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        if active.load(Ordering::SeqCst) >= max_connections {
                            metrics.reject_connection();
                            let _ = http::write_response(
                                &mut &stream,
                                503,
                                "connection limit reached\n",
                                false,
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::SeqCst);
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Dropping conn_tx here releases the workers.
                })?
        };

        Ok(Server {
            shared,
            metrics,
            accept: Some(accept),
            workers,
            engine: Some(engine_join),
        })
    }

    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live service counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Number of model evaluations performed so far (cache misses).
    pub fn tape_runs(&self) -> u64 {
        self.metrics.total_tape_runs()
    }

    /// A handle that can trigger graceful shutdown from another thread or
    /// from the `/admin/shutdown` route.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Blocks until a shutdown is triggered (by a [`ShutdownHandle`] or the
    /// `/admin/shutdown` route), drains connections, and joins every
    /// thread. Returns the forecaster with its final window state.
    pub fn join(mut self) -> OnlineForecaster {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.engine
            .take()
            .expect("join consumes the server once")
            .join()
            .expect("engine thread must not panic")
    }

    /// Triggers shutdown and joins; see [`Server::join`].
    pub fn shutdown(self) -> OnlineForecaster {
        self.shared.trigger_shutdown();
        self.join()
    }
}

/// Serves one (possibly keep-alive) connection to completion.
fn serve_connection(
    stream: TcpStream,
    engine: &EngineHandle,
    metrics: &Metrics,
    shared: &Shared,
    info: &ModelInfo,
    cfg: &ServeConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    for _ in 0..cfg.max_requests_per_connection {
        let req = match http::read_request(&mut reader, cfg.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(e) if e.is_timeout() => {
                let _ = http::write_response(&mut writer, 408, "request timed out\n", false);
                break;
            }
            Err(HttpError::BodyTooLarge(_)) => {
                metrics.record(Route::Other, 0, true);
                let _ = http::write_response(&mut writer, 413, "request body too large\n", false);
                break;
            }
            Err(HttpError::Malformed(msg)) => {
                metrics.record(Route::Other, 0, true);
                let _ = http::write_response(&mut writer, 400, &format!("{msg}\n"), false);
                break;
            }
            Err(HttpError::Io(_)) => break,
        };

        let started = Instant::now();
        let outcome = route(&req, engine, metrics, info);
        let latency_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        metrics.record(outcome.route, latency_us, outcome.status >= 400);

        let keep_alive =
            !req.wants_close() && !outcome.shutdown_after && !shared.is_shutting_down();
        if http::write_response(&mut writer, outcome.status, &outcome.body, keep_alive).is_err() {
            break;
        }
        if outcome.shutdown_after {
            shared.trigger_shutdown();
        }
        if !keep_alive {
            break;
        }
    }
}

struct Outcome {
    status: u16,
    body: String,
    route: Route,
    shutdown_after: bool,
}

impl Outcome {
    fn ok(route: Route, body: String) -> Self {
        Self {
            status: 200,
            body,
            route,
            shutdown_after: false,
        }
    }

    fn err(route: Route, status: u16, msg: String) -> Self {
        Self {
            status,
            body: msg,
            route,
            shutdown_after: false,
        }
    }
}

fn engine_failure(route: Route, e: EngineError) -> Outcome {
    let status = match e {
        EngineError::NotReady { .. } => 409,
        EngineError::Rejected(_) => 400,
    };
    Outcome::err(route, status, format!("{e}\n"))
}

/// Sends one engine request and waits for the typed reply.
fn ask<T: Send + 'static>(
    engine: &EngineHandle,
    build: impl FnOnce(std::sync::mpsc::Sender<T>) -> EngineRequest,
) -> Result<T, String> {
    let (tx, rx) = channel();
    engine.submit(build(tx))?;
    rx.recv_timeout(ENGINE_REPLY_TIMEOUT)
        .map_err(|_| "inference engine did not answer in time".to_string())
}

fn route(req: &Request, engine: &EngineHandle, metrics: &Metrics, info: &ModelInfo) -> Outcome {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => match ask(engine, |reply| EngineRequest::Health { reply }) {
            Ok(state) => Outcome::ok(
                Route::Healthz,
                format!(
                    "ok nodes {} features {} history {} horizon {} slots_per_day {} \
                     buffered {} ready {} version {}\n",
                    info.nodes,
                    info.features,
                    info.history,
                    info.horizon,
                    info.slots_per_day,
                    state.buffered,
                    state.ready,
                    state.version
                ),
            ),
            Err(msg) => Outcome::err(Route::Healthz, 500, format!("{msg}\n")),
        },
        ("GET", "/metrics") => Outcome::ok(Route::Metrics, metrics.render()),
        ("GET", "/debug/trace") => {
            // Chrome trace_event JSON of every span buffer in the process.
            // Empty (but well-formed) when tracing is off.
            let snap = st_obs::trace::snapshot();
            Outcome::ok(Route::Trace, st_obs::trace::chrome_trace_json(&snap))
        }
        ("POST", "/observe") => {
            let body = match req.body_text() {
                Ok(b) => b,
                Err(msg) => return Outcome::err(Route::Observe, 400, format!("{msg}\n")),
            };
            let obs = match wire::parse_observation(body, info.nodes, info.features) {
                Ok(o) => o,
                Err(msg) => return Outcome::err(Route::Observe, 400, format!("{msg}\n")),
            };
            match ask(engine, |reply| EngineRequest::Observe {
                values: obs.values,
                mask: obs.mask,
                slot: obs.slot,
                reply,
            }) {
                Ok(Ok(ack)) => Outcome::ok(
                    Route::Observe,
                    format!(
                        "ok version {} buffered {} ready {}\n",
                        ack.version, ack.buffered, ack.ready
                    ),
                ),
                Ok(Err(e)) => engine_failure(Route::Observe, e),
                Err(msg) => Outcome::err(Route::Observe, 500, format!("{msg}\n")),
            }
        }
        ("GET", "/forecast") => match ask(engine, |reply| EngineRequest::Forecast { reply }) {
            Ok(Ok(reply)) => Outcome::ok(
                Route::Forecast,
                wire::format_steps(reply.version, &reply.steps),
            ),
            Ok(Err(e)) => engine_failure(Route::Forecast, e),
            Err(msg) => Outcome::err(Route::Forecast, 500, format!("{msg}\n")),
        },
        ("GET", "/imputed") => match ask(engine, |reply| EngineRequest::Imputed { reply }) {
            Ok(Ok(reply)) => Outcome::ok(
                Route::Imputed,
                wire::format_steps(reply.version, &reply.steps),
            ),
            Ok(Err(e)) => engine_failure(Route::Imputed, e),
            Err(msg) => Outcome::err(Route::Imputed, 500, format!("{msg}\n")),
        },
        ("POST", "/admin/shutdown") => Outcome {
            status: 200,
            body: "shutting down\n".into(),
            route: Route::Shutdown,
            shutdown_after: true,
        },
        (
            _,
            "/healthz" | "/metrics" | "/debug/trace" | "/observe" | "/forecast" | "/imputed"
            | "/admin/shutdown",
        ) => Outcome::err(Route::Other, 405, "method not allowed\n".into()),
        _ => Outcome::err(Route::Other, 404, "no such route\n".into()),
    }
}
