//! LSTM cell shared across graph nodes.
//!
//! The paper runs one LSTM per node but shares the parameters across all
//! nodes (§III-E), which is exactly a batched LSTM cell with batch size `N`.
//! Its input at time `t` is the concatenation `[s_t ; m_t]` of the HGCN
//! embedding and the missingness mask — the concatenation is done by the
//! caller, the cell is input-agnostic.
//!
//! Note on the paper's Eq. block: the printed equations contain an obvious
//! typo (`ĥ = o ⊙ c + i ⊙ c`); we implement the standard LSTM update the
//! text refers to ("we use an LSTM structure"): `c_t = f ⊙ c_{t−1} + i ⊙ g`
//! and `h_t = o ⊙ tanh(c_t)`.

use crate::{ParamId, ParamStore, Session};
use st_autodiff::Var;
use st_tensor::{xavier_matrix, Matrix, StRng};

/// A batched LSTM cell with shared parameters.
///
/// # Examples
///
/// ```
/// use st_nn::{LstmCell, LstmState, ParamStore, Session};
/// use st_tensor::{rng, Matrix};
///
/// let mut store = ParamStore::new();
/// let cell = LstmCell::new(&mut store, &mut rng(0), 3, 4, "lstm");
/// let mut sess = Session::new(&store);
/// let state = cell.zero_state(&mut sess, 5);
/// let x = sess.constant(Matrix::ones(5, 3));
/// let next = cell.step(&mut sess, &store, x, &state);
/// assert_eq!(sess.tape.value(next.h).shape(), (5, 4));
/// ```
#[derive(Debug, Clone)]
pub struct LstmCell {
    w: ParamId, // input → 4 gates, (in × 4q)
    u: ParamId, // hidden → 4 gates, (q × 4q)
    b: ParamId, // (1 × 4q)
    in_dim: usize,
    hidden_dim: usize,
}

/// Hidden and cell state of an [`LstmCell`] at one timestep.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `h`, `B × q`.
    pub h: Var,
    /// Cell state `c`, `B × q`.
    pub c: Var,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialised weights; the forget-gate bias
    /// starts at 1.0 (standard practice to ease early training).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StRng,
        in_dim: usize,
        hidden_dim: usize,
        name: &str,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            xavier_matrix(rng, in_dim, 4 * hidden_dim),
        );
        let u = store.add(
            format!("{name}.u"),
            xavier_matrix(rng, hidden_dim, 4 * hidden_dim),
        );
        let mut bias = Matrix::zeros(1, 4 * hidden_dim);
        for j in 0..hidden_dim {
            bias[(0, j)] = 1.0; // forget gate slice
        }
        let b = store.add(format!("{name}.b"), bias);
        Self {
            w,
            u,
            b,
            in_dim,
            hidden_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width `q`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Zero initial state for a batch of `batch` rows.
    pub fn zero_state(&self, sess: &mut Session, batch: usize) -> LstmState {
        let h = sess.constant_zeros(batch, self.hidden_dim);
        let c = sess.constant_zeros(batch, self.hidden_dim);
        LstmState { h, c }
    }

    /// One step: consumes `x` (`B × in_dim`) and the previous state,
    /// producing the next state.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `in_dim`.
    pub fn step(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        x: Var,
        prev: &LstmState,
    ) -> LstmState {
        assert_eq!(
            sess.tape.value(x).cols(),
            self.in_dim,
            "lstm cell expects width {}",
            self.in_dim
        );
        let w = sess.var(store, self.w);
        let u = sess.var(store, self.u);
        let b = sess.var(store, self.b);

        let xw = sess.tape.matmul(x, w);
        let hu = sess.tape.matmul(prev.h, u);
        let pre = sess.tape.add(xw, hu);
        let pre = sess.tape.add_bias(pre, b);

        let q = self.hidden_dim;
        let f_pre = sess.tape.slice_cols(pre, 0, q);
        let i_pre = sess.tape.slice_cols(pre, q, 2 * q);
        let o_pre = sess.tape.slice_cols(pre, 2 * q, 3 * q);
        let g_pre = sess.tape.slice_cols(pre, 3 * q, 4 * q);

        let f = sess.tape.sigmoid(f_pre);
        let i = sess.tape.sigmoid(i_pre);
        let o = sess.tape.sigmoid(o_pre);
        let g = sess.tape.tanh(g_pre);

        let fc = sess.tape.mul(f, prev.c);
        let ig = sess.tape.mul(i, g);
        let c = sess.tape.add(fc, ig);
        let ct = sess.tape.tanh(c);
        let h = sess.tape.mul(o, ct);
        LstmState { h, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autodiff::check_gradient;
    use st_tensor::rng;

    #[test]
    fn step_shapes() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(1), 3, 4, "lstm");
        let mut sess = Session::new(&store);
        let st0 = cell.zero_state(&mut sess, 2);
        let x = sess.constant(Matrix::ones(2, 3));
        let st1 = cell.step(&mut sess, &store, x, &st0);
        assert_eq!(sess.tape.value(st1.h).shape(), (2, 4));
        assert_eq!(sess.tape.value(st1.c).shape(), (2, 4));
        assert!(sess.tape.value(st1.h).is_finite());
    }

    #[test]
    fn hidden_state_bounded_by_tanh() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(2), 2, 3, "lstm");
        let mut sess = Session::new(&store);
        let st0 = cell.zero_state(&mut sess, 1);
        let x = sess.constant(Matrix::from_rows(&[&[100.0, -100.0]]));
        let st1 = cell.step(&mut sess, &store, x, &st0);
        for &v in sess.tape.value(st1.h).as_slice() {
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn state_evolves_over_steps() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(3), 2, 3, "lstm");
        let mut sess = Session::new(&store);
        let mut state = cell.zero_state(&mut sess, 1);
        let x = sess.constant(Matrix::from_rows(&[&[1.0, -0.5]]));
        let h_values: Vec<Matrix> = (0..3)
            .map(|_| {
                state = cell.step(&mut sess, &store, x, &state);
                sess.tape.value(state.h).clone()
            })
            .collect();
        assert_ne!(h_values[0], h_values[1]);
        assert_ne!(h_values[1], h_values[2]);
    }

    #[test]
    fn unrolled_gradient_checks_against_finite_differences() {
        // Three steps unrolled; checks the recurrent weight U, whose gradient
        // only exists through the unrolled chain.
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(4), 2, 3, "lstm");
        let xs = [
            Matrix::from_rows(&[&[0.5, -0.2]]),
            Matrix::from_rows(&[&[-1.0, 0.3]]),
            Matrix::from_rows(&[&[0.1, 0.9]]),
        ];
        let run = |store: &ParamStore| -> (f64, Matrix) {
            let mut sess = Session::new(store);
            let mut state = cell.zero_state(&mut sess, 1);
            for x0 in &xs {
                let x = sess.constant(x0.clone());
                state = cell.step(&mut sess, store, x, &state);
            }
            let loss = sess.tape.mean(state.h);
            sess.backward(loss);
            let mut tmp = store.clone();
            tmp.zero_grads();
            sess.write_grads(&mut tmp);
            (sess.tape.value(loss)[(0, 0)], tmp.grad(cell.u).clone())
        };
        let (_, gu) = run(&store);
        let res = check_gradient(store.value(cell.u), &gu, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(cell.u, m.clone());
            run(&s2).0
        });
        assert!(res.passes(1e-5), "recurrent grad failed: {res:?}");
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(5), 2, 3, "lstm");
        let b = store.value(cell.b);
        for j in 0..3 {
            assert_eq!(b[(0, j)], 1.0);
        }
        for j in 3..12 {
            assert_eq!(b[(0, j)], 0.0);
        }
    }
}
