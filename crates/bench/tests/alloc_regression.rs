//! Allocation-regression guard for the zero-reallocation training loop.
//!
//! This file must hold exactly one `#[test]`: the counting allocator's
//! counters are process-global, so a second concurrently-running test would
//! pollute the measurements (libtest runs tests in threads of one process).

use rihgcn_bench::alloc::{AllocSnapshot, CountingAlloc};
use rihgcn_core::{Forecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, WindowSampler};
use st_nn::Adam;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Step 3 of a recycled-session training loop must allocate under 5% of
/// what step 1 (empty pool — the historical tape-per-step baseline) does,
/// at 1 and at 4 configured worker threads. The model is small enough that
/// every kernel stays below `st_par`'s parallel threshold, so worker
/// threads add no allocator traffic of their own.
#[test]
fn steady_state_step_allocates_under_five_percent_of_step_one() {
    for threads in [1usize, 4] {
        st_par::set_num_threads(threads);

        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 3,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.4, &mut st_tensor::rng(5));
        let cfg = RihgcnConfig {
            gcn_dim: 4,
            lstm_dim: 6,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let mut model = RihgcnModel::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let mut adam = Adam::new(model.params(), 1e-3);

        let mut allocs = Vec::new();
        let mut stats_after_step1 = None;
        for _ in 0..3 {
            model.params_mut().zero_grads();
            let snap = AllocSnapshot::take();
            let loss = model.accumulate_gradients(&sample);
            model.params_mut().clip_grad_norm(5.0);
            adam.step(model.params_mut());
            allocs.push(snap.allocations_since());
            assert!(loss.is_finite());
            if stats_after_step1.is_none() {
                stats_after_step1 = model.training_pool_stats();
            }
        }

        assert!(
            allocs[0] > 100,
            "step 1 should miss the empty pool on every buffer, got {} allocs",
            allocs[0]
        );
        let limit = allocs[0] / 20;
        assert!(
            allocs[2] < limit,
            "with {threads} threads, step 3 made {} heap allocations — \
             not under 5% of step 1's {} (limit {})",
            allocs[2],
            allocs[0],
            limit
        );

        // The pool accessor must corroborate the allocator-level numbers:
        // once step 1 has stocked the pool, steady-state steps serve ≥90%
        // of buffer acquisitions from it. Measured as a delta so step 1's
        // cold misses don't dilute the steady-state rate.
        let s1 = stats_after_step1.expect("session exists after step 1");
        let sf = model.training_pool_stats().expect("session still alive");
        let hits = sf.hits - s1.hits;
        let misses = sf.misses - s1.misses;
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        assert!(
            rate >= 0.90,
            "with {threads} threads, steady-state pool hit rate {:.1}% \
             below the 90% floor ({hits} hits / {misses} misses after step 1)",
            rate * 100.0
        );
    }
    st_par::set_num_threads(0);
}
