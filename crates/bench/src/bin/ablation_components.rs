//! Component ablation: bi-directional vs uni-directional imputation, the
//! forward/backward consistency term, and the prediction-head aggregation
//! (concat vs attention). PeMS at 40% missing.

use rihgcn_bench::{pems_at, rihgcn_imputation, rihgcn_prediction, Bench, Scale};
use rihgcn_core::{fit, PredictionHead, RihgcnConfig, RihgcnModel};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Component ablation — PeMS, 40% missing, scale `{}`",
        scale.name
    );
    let ds = pems_at(&scale, 0.4, 800);
    let bench = Bench::prepare(&ds, &scale, 12, 12);

    let base = RihgcnConfig {
        gcn_dim: scale.gcn_dim,
        lstm_dim: scale.lstm_dim,
        num_temporal_graphs: 4,
        history: 12,
        horizon: 12,
        ..Default::default()
    };
    let variants: Vec<(&str, RihgcnConfig)> = vec![
        ("full (bi + consistency)", base.clone()),
        ("uni-directional", base.clone().unidirectional()),
        (
            "no consistency term",
            base.clone().with_consistency_weight(0.0),
        ),
        (
            "attention head",
            base.clone().with_head(PredictionHead::Attention),
        ),
        ("no temporal graphs", base.with_num_temporal_graphs(0)),
    ];

    println!(
        "\n{:<26} | {:>9} {:>9} | {:>9} {:>9}",
        "variant", "pred MAE", "pred RMSE", "imp MAE", "imp RMSE"
    );
    println!("{}", "-".repeat(72));
    for (name, cfg) in variants {
        let t0 = Instant::now();
        let mut model = RihgcnModel::from_dataset(&bench.norm.train, cfg);
        let tc = scale.train_config();
        fit(&mut model, &bench.train, &bench.val, &tc);
        let pred = rihgcn_prediction(&model, &bench);
        let imp = rihgcn_imputation(&model, &bench);
        println!(
            "{name:<26} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            pred.mae, pred.rmse, imp.mae, imp.rmse
        );
        eprintln!("{name} done in {:?}", t0.elapsed());
    }
}
