//! Synthetic PeMS-like static-sensor dataset.
//!
//! Stand-in for the paper's PeMS district-07 extract (Jan–Apr 2020, 5-minute
//! speed data, four features: average speed plus the first three lane
//! speeds). The generator reproduces the statistical structure every model
//! in the comparison actually exploits:
//!
//! * **daily periodicity** — weekday morning/evening rush-hour congestion
//!   dips on top of a ~65 mph free-flow speed;
//! * **weekly periodicity** — weekends lose the commute peaks and gain a
//!   mild midday dip;
//! * **spatial correlation** — rush-hour congestion is a wave that
//!   propagates along the sensor corridor with per-node phase lag and
//!   intensity, so nearby same-direction sensors are strongly correlated;
//! * **heterogeneity** — sensors alternate between the two freeway
//!   directions: eastbound congests during the morning commute, westbound
//!   during the evening one. Geographically adjacent sensors can therefore
//!   carry very different daily patterns while distant same-direction
//!   sensors match — the exact phenomenon (paper Fig. 3) that motivates
//!   temporal graphs on top of the geographic one;
//! * **incidents** — random short-lived congestion events that spread to
//!   upstream neighbours, giving the imputation task non-periodic signal;
//! * **noise** — smooth AR(1) fluctuations plus per-lane measurement noise.
//!
//! Static loop detectors rarely drop samples on their own; the Table-I
//! missing-rate protocol removes observations afterwards via
//! [`crate::drop_observed`].

use crate::TrafficDataset;
use st_graph::RoadNetwork;
use st_tensor::{rng, standard_normal, StRng, Tensor3};

/// Configuration for [`generate_pems`].
#[derive(Debug, Clone, PartialEq)]
pub struct PemsConfig {
    /// Number of corridor sensors.
    pub num_nodes: usize,
    /// Number of simulated days.
    pub num_days: usize,
    /// Sampling interval in minutes (paper: 5).
    pub interval_minutes: usize,
    /// Mean number of incidents per day across the whole corridor.
    pub incidents_per_day: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PemsConfig {
    fn default() -> Self {
        Self {
            num_nodes: 20,
            num_days: 28,
            interval_minutes: 5,
            incidents_per_day: 2.0,
            seed: 7,
        }
    }
}

/// Number of features produced per node: average speed + three lane speeds.
pub const PEMS_FEATURES: usize = 4;

struct Incident {
    node: usize,
    start_slot: usize,
    duration: usize,
    severity: f64,
}

/// Generates the synthetic PeMS-like dataset (speeds in mph).
///
/// The returned dataset has a complete mask; apply
/// [`TrafficDataset::with_extra_missing`] for the Table-I protocol.
///
/// # Examples
///
/// ```
/// use st_data::{generate_pems, PemsConfig};
///
/// let ds = generate_pems(&PemsConfig { num_nodes: 4, num_days: 1, ..Default::default() });
/// assert_eq!(ds.num_nodes(), 4);
/// assert_eq!(ds.num_features(), st_data::PEMS_FEATURES);
/// assert_eq!(ds.num_times(), 288);
/// ```
///
/// # Panics
///
/// Panics if any dimension is zero or the interval does not divide a day.
pub fn generate_pems(cfg: &PemsConfig) -> TrafficDataset {
    assert!(
        cfg.num_nodes > 0 && cfg.num_days > 0,
        "empty dataset requested"
    );
    let slots = 24 * 60 / cfg.interval_minutes;
    let total = slots * cfg.num_days;
    let n = cfg.num_nodes;
    let mut rand = rng(cfg.seed);

    let network = RoadNetwork::corridor(n, 1.2);

    // Per-node personality: free-flow speed, rush intensity, phase lag and
    // direction. Sensors alternate between the two freeway directions;
    // the morning commute hits eastbound (even) sensors, the evening
    // commute hits westbound (odd) sensors.
    let free_flow: Vec<f64> = (0..n).map(|_| 63.0 + 5.0 * rand.gen_f64()).collect();
    let rush_strength: Vec<f64> = (0..n)
        .map(|i| {
            // Congestion is strongest near the "downtown" end of the corridor
            // and decays along it, with some randomness.
            let positional = 1.0 - 0.6 * (i as f64 / n.max(1) as f64);
            positional * (0.8 + 0.4 * rand.gen_f64())
        })
        .collect();
    // Opposite directions carry their congestion waves opposite ways.
    let phase_lag: Vec<f64> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                i as f64 * 0.6
            } else {
                (n - 1 - i) as f64 * 0.6
            }
        })
        .collect(); // minutes per node

    // Pre-draw incidents for every day.
    let incidents = draw_incidents(cfg, slots, &mut rand);

    // AR(1) noise state per (node, lane).
    let mut ar = vec![[0.0f64; 3]; n];
    let rho = 0.92;
    let ar_scale = 1.1;

    let mut values = Tensor3::zeros(n, PEMS_FEATURES, total);
    for t in 0..total {
        let day = t / slots;
        let slot = t % slots;
        let minute = (slot * cfg.interval_minutes) as f64;
        let weekday = day % 7 < 5;
        for node in 0..n {
            let base = free_flow[node];
            let m = minute - phase_lag[node];
            let mut dip = 0.0;
            if weekday {
                // Morning rush centred 7:45, evening rush centred 17:15.
                // Eastbound (even) sensors absorb the morning commute,
                // westbound (odd) sensors the evening one.
                let (morning_w, evening_w) = if node % 2 == 0 {
                    (1.0, 0.25)
                } else {
                    (0.25, 1.0)
                };
                dip += 44.0 * morning_w * rush_strength[node] * gaussian_bump(m, 465.0, 55.0);
                dip += 50.0 * evening_w * rush_strength[node] * gaussian_bump(m, 1035.0, 70.0);
            } else {
                // Weekend: mild midday slowdown.
                dip += 9.0 * rush_strength[node] * gaussian_bump(m, 810.0, 130.0);
            }
            dip += incident_dip(&incidents[day], node, slot, slots);

            for lane in 0..3 {
                // Lane 1 (leftmost) runs fastest.
                let lane_offset = 3.0 - 3.0 * lane as f64;
                let eps = standard_normal(&mut rand);
                ar[node][lane] = rho * ar[node][lane] + ar_scale * eps;
                let speed =
                    (base + lane_offset - dip + ar[node][lane] + 0.6 * standard_normal(&mut rand))
                        .clamp(3.0, 90.0);
                values[(node, 1 + lane, t)] = speed;
            }
            let avg = (values[(node, 1, t)] + values[(node, 2, t)] + values[(node, 3, t)]) / 3.0;
            values[(node, 0, t)] = avg;
        }
    }

    let mask = Tensor3::ones(n, PEMS_FEATURES, total);
    TrafficDataset::new("pems-synth", values, mask, network, cfg.interval_minutes)
}

fn draw_incidents(cfg: &PemsConfig, slots: usize, rand: &mut StRng) -> Vec<Vec<Incident>> {
    (0..cfg.num_days)
        .map(|_| {
            let count = poisson_sample(cfg.incidents_per_day, rand);
            (0..count)
                .map(|_| Incident {
                    node: rand.gen_range(0..cfg.num_nodes),
                    start_slot: rand.gen_range(0..slots),
                    duration: rand.gen_range(6..18usize), // 30–90 min at 5-min slots
                    severity: 15.0 + 20.0 * rand.gen_f64(),
                })
                .collect()
        })
        .collect()
}

fn poisson_sample(lambda: f64, rand: &mut StRng) -> usize {
    // Knuth's method; lambda is small (a few incidents per day).
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rand.gen_f64();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 50 {
            return k;
        }
    }
}

fn gaussian_bump(x: f64, centre: f64, width: f64) -> f64 {
    let z = (x - centre) / width;
    (-0.5 * z * z).exp()
}

fn incident_dip(incidents: &[Incident], node: usize, slot: usize, slots: usize) -> f64 {
    let mut dip = 0.0;
    for inc in incidents {
        if slot < inc.start_slot || slot >= (inc.start_slot + inc.duration).min(slots) {
            continue;
        }
        // Jams propagate along the jammed direction only.
        if node % 2 != inc.node % 2 {
            continue;
        }
        let hop = node.abs_diff(inc.node) / 2;
        if hop > 3 {
            continue;
        }
        // The jam spreads upstream with one slot of lag per hop and decays.
        let lag = hop;
        if slot < inc.start_slot + lag {
            continue;
        }
        let spatial = 0.55_f64.powi(hop as i32);
        let progress = (slot - inc.start_slot) as f64 / inc.duration as f64;
        let temporal = (std::f64::consts::PI * progress).sin(); // ramp up, ramp down
        dip += inc.severity * spatial * temporal;
    }
    dip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrafficDataset {
        generate_pems(&PemsConfig {
            num_nodes: 6,
            num_days: 7,
            interval_minutes: 5,
            incidents_per_day: 1.0,
            seed: 3,
        })
    }

    #[test]
    fn shapes_and_metadata() {
        let ds = small();
        assert_eq!(ds.num_nodes(), 6);
        assert_eq!(ds.num_features(), PEMS_FEATURES);
        assert_eq!(ds.num_times(), 7 * 288);
        assert_eq!(ds.missing_rate(), 0.0);
        assert!(ds.values.is_finite());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.values, b.values);
        let c = generate_pems(&PemsConfig {
            seed: 4,
            num_nodes: 6,
            num_days: 7,
            ..Default::default()
        });
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn speeds_in_plausible_range() {
        let ds = small();
        for &v in ds.values.as_slice() {
            assert!((3.0..=95.0).contains(&v), "speed {v} out of range");
        }
        // Overall mean should sit in freeway territory.
        let mean = ds.values.mean();
        assert!((40.0..70.0).contains(&mean), "mean speed {mean}");
    }

    #[test]
    fn weekday_rush_hour_slower_than_night() {
        let ds = small();
        // Day 0 is a weekday; node 0 is eastbound (morning-congested).
        // Compare 7:45am vs 2:00am on node 0 average speed.
        let rush_slot = (7 * 60 + 45) / 5;
        let night_slot = (2 * 60) / 5;
        let mut rush = 0.0;
        let mut night = 0.0;
        for day in 0..5 {
            rush += ds.values[(0, 0, day * 288 + rush_slot)];
            night += ds.values[(0, 0, day * 288 + night_slot)];
        }
        assert!(
            rush + 5.0 < night,
            "rush mean {} should be well below night mean {}",
            rush / 5.0,
            night / 5.0
        );
    }

    #[test]
    fn weekend_lacks_morning_rush() {
        let ds = small();
        let rush_slot = (7 * 60 + 45) / 5;
        let weekday = ds.values[(0, 0, rush_slot)];
        let weekend = ds.values[(0, 0, 5 * 288 + rush_slot)]; // day 5 = Saturday
        assert!(weekend > weekday, "weekend {weekend} vs weekday {weekday}");
    }

    #[test]
    fn same_direction_neighbours_more_correlated_than_distant() {
        let ds = small();
        let corr = |a: usize, b: usize| -> f64 {
            let sa = ds.values.series(a, 0);
            let sb = ds.values.series(b, 0);
            pearson(&sa, &sb)
        };
        // Along the same direction, correlation decays with distance.
        assert!(corr(0, 2) > corr(0, 4) - 0.2, "same-direction decay");
        // The heterogeneity property (paper Fig. 3): the geographically
        // adjacent opposite-direction sensor is *less* similar than the
        // farther same-direction one.
        assert!(
            corr(0, 2) > corr(0, 1),
            "same-direction {} must beat adjacent opposite-direction {}",
            corr(0, 2),
            corr(0, 1)
        );
    }

    #[test]
    fn directions_have_opposite_rush_peaks() {
        let ds = small();
        let morning = (7 * 60 + 45) / 5;
        let evening = (17 * 60 + 15) / 5;
        // Eastbound node 0: morning dip deeper than evening.
        let e_morning = ds.values[(0, 0, morning)];
        let e_evening = ds.values[(0, 0, evening)];
        // Westbound node 1: evening dip deeper than morning.
        let w_morning = ds.values[(1, 0, morning)];
        let w_evening = ds.values[(1, 0, evening)];
        assert!(
            e_morning < e_evening,
            "eastbound {e_morning} vs {e_evening}"
        );
        assert!(
            w_evening < w_morning,
            "westbound {w_evening} vs {w_morning}"
        );
    }

    #[test]
    fn average_is_mean_of_lanes() {
        let ds = small();
        for t in [0usize, 100, 500] {
            let avg = ds.values[(2, 0, t)];
            let mean = (ds.values[(2, 1, t)] + ds.values[(2, 2, t)] + ds.values[(2, 3, t)]) / 3.0;
            assert!((avg - mean).abs() < 1e-9);
        }
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }
}
