#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the paper reproduction.
#
# Usage:
#   RIHGCN_SCALE=default scripts/run_experiments.sh [results-dir]
#
# Each binary writes its stdout to <results-dir>/results_<name>.txt and its
# progress log (stderr) to <results-dir>/results_<name>.log.

set -u
DIR="${1:-results}"
mkdir -p "$DIR"

# Set SKIP="name1 name2" to skip binaries whose results already exist.
SKIP="${SKIP:-}"

BINARIES=(
  table1_missing
  table1_horizon
  table2_stampede
  table3_imputation
  fig3_graphs
  fig4_num_graphs
  fig5_lambda
  ablation_components
  ablation_distance
  ablation_circular
)

cargo build --release -p rihgcn-bench || exit 1

for bin in "${BINARIES[@]}"; do
  case " $SKIP " in
    *" $bin "*) echo "=== $bin (skipped) ==="; continue ;;
  esac
  echo "=== $bin ==="
  cargo run --release -q -p rihgcn-bench --bin "$bin" \
    > "$DIR/results_$bin.txt" 2> "$DIR/results_$bin.log"
  status=$?
  if [ $status -ne 0 ]; then
    echo "FAILED ($status) — see $DIR/results_$bin.log"
  else
    echo "ok — $DIR/results_$bin.txt"
  fi
done
