//! Dense linear-algebra substrate for the RIHGCN reproduction.
//!
//! This crate provides the small, dependency-free numerical kernel the rest
//! of the workspace is built on:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the elementwise,
//!   product and reduction operations the autodiff tape and NN layers need;
//! * [`Tensor3`] — `N × D × T` spatio-temporal data cubes;
//! * [`linalg`] — Gaussian elimination, Cholesky, least squares and a
//!   power-iteration eigenvalue bound;
//! * seeded random initialisation helpers ([`rng`], [`xavier_matrix`], …).
//!
//! # Examples
//!
//! ```
//! use st_tensor::{linalg, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
//! let b = Matrix::col_vector(&[2.0, 8.0]);
//! let x = linalg::solve(&a, &b)?;
//! assert_eq!(x, Matrix::col_vector(&[1.0, 2.0]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod linalg;
mod matrix;
mod parallel;
mod pool;
mod random;
mod rng;
pub mod stats;
mod tensor3;

pub use linalg::SolveError;
pub use matrix::{Matrix, KC, MR, NR};
pub use parallel::{parallel_threshold, set_parallel_threshold, DEFAULT_PARALLEL_THRESHOLD};
pub use pool::{MatrixPool, PoolStats};
pub use random::{normal_matrix, rng, standard_normal, uniform_matrix, xavier_matrix};
pub use rng::{splitmix64, SampleRange, StRng};
pub use tensor3::Tensor3;
