//! Property-based tests for matrix algebra invariants.

use st_check::{prop_assert, prop_assert_eq, Check};
use st_tensor::{linalg, Matrix};

/// Builds a matrix of the given shape from generated entries in
/// `[-10, 10)`; shrinking happens on the entry vector (element-wise, length
/// preserved by the custom shrinker below).
fn matrix(g: &mut st_check::Gen, rows: usize, cols: usize) -> Matrix {
    g.matrix(rows, cols, -10.0, 10.0)
}

/// Shrinks every matrix of a failing tuple entry-wise (shape preserved).
fn shrink_matrices(ms: &Vec<Matrix>) -> Vec<Vec<Matrix>> {
    use st_check::Shrink;
    ms.iter()
        .enumerate()
        .flat_map(|(i, m)| m.shrink().into_iter().map(move |cand| (i, cand)))
        .map(|(i, cand)| {
            let mut copy = ms.clone();
            copy[i] = cand;
            copy
        })
        .collect()
}

#[test]
fn matmul_associative() {
    Check::new("matmul_associative").cases(64).run_with_shrink(
        |g| vec![matrix(g, 3, 4), matrix(g, 4, 2), matrix(g, 2, 5)],
        shrink_matrices,
        |ms| {
            let (a, b, c) = (&ms[0], &ms[1], &ms[2]);
            let left = a.matmul(b).matmul(c);
            let right = a.matmul(&b.matmul(c));
            prop_assert!(left.max_abs_diff(&right) < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn matmul_distributes_over_addition() {
    Check::new("matmul_distributes_over_addition")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 3, 4), matrix(g, 4, 2), matrix(g, 4, 2)],
            shrink_matrices,
            |ms| {
                let (a, b, c) = (&ms[0], &ms[1], &ms[2]);
                let sum = b + c;
                let left = a.matmul(&sum);
                let mut right = a.matmul(b);
                right.axpy(1.0, &a.matmul(c));
                prop_assert!(left.max_abs_diff(&right) < 1e-9);
                Ok(())
            },
        );
}

#[test]
fn transpose_reverses_product() {
    Check::new("transpose_reverses_product")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 3, 4), matrix(g, 4, 2)],
            shrink_matrices,
            |ms| {
                let (a, b) = (&ms[0], &ms[1]);
                let left = a.matmul(b).transpose();
                let right = b.transpose().matmul(&a.transpose());
                prop_assert!(left.max_abs_diff(&right) < 1e-10);
                Ok(())
            },
        );
}

#[test]
fn identity_is_neutral() {
    Check::new("identity_is_neutral").cases(64).run(
        |g| matrix(g, 4, 4),
        |a| {
            prop_assert!(a.matmul(&Matrix::identity(4)).max_abs_diff(a) < 1e-12);
            prop_assert!(Matrix::identity(4).matmul(a).max_abs_diff(a) < 1e-12);
            Ok(())
        },
    );
}

#[test]
fn fused_transpose_products_agree() {
    Check::new("fused_transpose_products_agree")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 3, 4), matrix(g, 3, 2)],
            shrink_matrices,
            |ms| {
                let (a, b) = (&ms[0], &ms[1]);
                prop_assert!(a.matmul_tn(b).max_abs_diff(&a.transpose().matmul(b)) < 1e-10);
                let c = Matrix::from_fn(5, 4, |r, q| (r * 4 + q) as f64 * 0.1);
                prop_assert!(a.matmul_nt(&c).max_abs_diff(&a.matmul(&c.transpose())) < 1e-10);
                Ok(())
            },
        );
}

#[test]
fn frobenius_norm_triangle_inequality() {
    Check::new("frobenius_norm_triangle_inequality")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 3, 3), matrix(g, 3, 3)],
            shrink_matrices,
            |ms| {
                let (a, b) = (&ms[0], &ms[1]);
                let sum = a + b;
                prop_assert!(
                    sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9
                );
                Ok(())
            },
        );
}

#[test]
fn hcat_slice_round_trip() {
    Check::new("hcat_slice_round_trip")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 3, 2), matrix(g, 3, 4)],
            shrink_matrices,
            |ms| {
                let (a, b) = (&ms[0], &ms[1]);
                let cat = a.hcat(b);
                prop_assert_eq!(cat.slice_cols(0, 2), *a);
                prop_assert_eq!(cat.slice_cols(2, 6), *b);
                Ok(())
            },
        );
}

#[test]
fn vcat_slice_round_trip() {
    Check::new("vcat_slice_round_trip")
        .cases(64)
        .run_with_shrink(
            |g| vec![matrix(g, 2, 3), matrix(g, 4, 3)],
            shrink_matrices,
            |ms| {
                let (a, b) = (&ms[0], &ms[1]);
                let cat = a.vcat(b);
                prop_assert_eq!(cat.slice_rows(0, 2), *a);
                prop_assert_eq!(cat.slice_rows(2, 6), *b);
                Ok(())
            },
        );
}

#[test]
fn solve_inverts_matmul() {
    Check::new("solve_inverts_matmul").cases(64).run(
        |g| matrix(g, 3, 1),
        |x| {
            // A fixed well-conditioned system: A·x = b ⇒ solve(A, b) = x.
            let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
            let b = a.matmul(x);
            let solved = linalg::solve(&a, &b).unwrap();
            prop_assert!(solved.max_abs_diff(x) < 1e-8);
            Ok(())
        },
    );
}

#[test]
fn cholesky_solve_agrees_with_lu() {
    Check::new("cholesky_solve_agrees_with_lu").cases(64).run(
        |g| matrix(g, 3, 2),
        |x| {
            let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 5.0, 2.0], &[0.5, 2.0, 6.0]]);
            let b = a.matmul(x);
            let via_chol = linalg::solve_spd(&a, &b).unwrap();
            let via_lu = linalg::solve(&a, &b).unwrap();
            prop_assert!(via_chol.max_abs_diff(&via_lu) < 1e-8);
            Ok(())
        },
    );
}

#[test]
fn sum_cols_then_rows_equals_total() {
    Check::new("sum_cols_then_rows_equals_total").cases(64).run(
        |g| matrix(g, 4, 5),
        |a| {
            let total = a.sum();
            let by_cols = a.sum_cols().sum();
            let by_rows = a.sum_rows().sum();
            prop_assert!((total - by_cols).abs() < 1e-9);
            prop_assert!((total - by_rows).abs() < 1e-9);
            Ok(())
        },
    );
}
