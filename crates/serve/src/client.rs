//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! used by the load generator, the CLI smoke path, and the loopback tests.

use crate::http::HttpError;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A plain-text HTTP response: status code, headers and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body decoded as UTF-8.
    pub body: String,
}

impl Response {
    /// First header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Asserts the response is a 200, returning the body.
    ///
    /// # Errors
    ///
    /// Returns `status + body` as a message on any non-200 status.
    pub fn into_ok(self) -> Result<String, String> {
        if self.status == 200 {
            Ok(self.body)
        } else {
            Err(format!("HTTP {}: {}", self.status, self.body.trim_end()))
        }
    }
}

/// One keep-alive connection to an st-serve instance.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:8100`) with the given timeout
    /// applied to connect and reads.
    ///
    /// # Errors
    ///
    /// Returns any error resolving or connecting to the address.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<HttpClient> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other(format!("unresolvable address {addr}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads the response, reusing the connection.
    ///
    /// # Errors
    ///
    /// Returns any socket error or protocol violation as a message.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: st-serve\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .and_then(|()| self.writer.flush())
        .map_err(|e| format!("send {method} {path}: {e}"))?;
        read_response(&mut self.reader).map_err(|e| format!("read {method} {path}: {e}"))
    }

    /// `GET path`, expecting a 200; returns the body.
    ///
    /// # Errors
    ///
    /// Returns socket/protocol errors and non-200 statuses as a message.
    pub fn get_ok(&mut self, path: &str) -> Result<String, String> {
        self.request("GET", path, "")?.into_ok()
    }

    /// `POST path` with a body, expecting a 200; returns the response body.
    ///
    /// # Errors
    ///
    /// Returns socket/protocol errors and non-200 statuses as a message.
    pub fn post_ok(&mut self, path: &str, body: &str) -> Result<String, String> {
        self.request("POST", path, body)?.into_ok()
    }
}

/// Reads one status line + headers + `Content-Length` body.
fn read_response<R: io::BufRead>(r: &mut R) -> Result<Response, HttpError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(HttpError::Malformed("connection closed".into()));
    }
    let status_line = line.trim_end_matches(['\r', '\n']);
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(HttpError::Malformed(format!(
            "bad status line: {status_line:?}"
        )));
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!("bad version: {version:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|e| HttpError::Malformed(format!("bad status: {e}")))?;

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Err(HttpError::Malformed("EOF inside headers".into()));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let (name, value) = (name.trim(), value.trim());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|e| HttpError::Malformed(format!("bad content-length: {e}")))?;
            }
            headers.push((name.to_string(), value.to_string()));
        }
    }

    let mut body = vec![0u8; content_length];
    io::Read::read_exact(r, &mut body)?;
    let body = String::from_utf8(body)
        .map_err(|e| HttpError::Malformed(format!("body is not UTF-8: {e}")))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_response() {
        let raw =
            "HTTP/1.1 409 Conflict\r\nContent-Length: 4\r\nConnection: keep-alive\r\n\r\nnope";
        let resp = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(resp.status, 409);
        assert_eq!(resp.body, "nope");
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert!(resp.into_ok().is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_response(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])).is_err());
        assert!(read_response(&mut BufReader::new(&b""[..])).is_err());
    }
}
