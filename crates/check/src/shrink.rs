//! Structural shrinking of failing inputs.

use st_tensor::{Matrix, Tensor3};

/// Proposes structurally smaller candidates for a failing input.
///
/// The runner tries candidates in order and greedily recurses into the
/// first one that still fails the property, so earlier candidates should be
/// the most aggressive simplifications (zero, half length) and later ones
/// the gentler per-element tweaks. Implementations need not guarantee
/// strict progress — the runner bounds the total number of shrink
/// attempts.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`, most aggressive first.
    /// An empty vector means the value is already minimal.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let mut push = |c: f64| {
            if c != *self && !out.contains(&c) {
                out.push(c);
            }
        };
        if self.is_finite() {
            push(0.0);
            push(self.trunc());
            push(self / 2.0);
        } else {
            push(0.0);
        }
        out
    }
}

impl Shrink for usize {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            0 => Vec::new(),
            1 => vec![0],
            n => vec![n / 2, n - 1],
        }
    }
}

impl Shrink for u64 {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            0 => Vec::new(),
            1 => vec![0],
            n => vec![n / 2, n - 1],
        }
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Cap on the number of candidates a single `shrink` call returns, so deep
/// structures do not produce quadratic candidate lists.
const MAX_CANDIDATES: usize = 64;

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Structural shrinks first: half the vector, then drop one element.
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec());
            out.push(self[..self.len() - 1].to_vec());
        }
        // Element-wise shrinks, one position at a time.
        'outer: for (i, item) in self.iter().enumerate() {
            for cand in item.shrink() {
                if out.len() >= MAX_CANDIDATES {
                    break 'outer;
                }
                let mut copy = self.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

impl Shrink for Matrix {
    fn shrink(&self) -> Vec<Self> {
        if self.is_empty() || self.as_slice().iter().all(|&x| x == 0.0) {
            return Vec::new();
        }
        vec![
            Matrix::zeros(self.rows(), self.cols()),
            self.map(|x| x.trunc()),
            self.map(|x| x / 2.0),
        ]
        .into_iter()
        .filter(|c| c != self)
        .collect()
    }
}

impl Shrink for Tensor3 {
    fn shrink(&self) -> Vec<Self> {
        if self.is_empty() || self.as_slice().iter().all(|&x| x == 0.0) {
            return Vec::new();
        }
        let (n, d, t) = self.shape();
        vec![
            Tensor3::zeros(n, d, t),
            self.map(|x| x.trunc()),
            self.map(|x| x / 2.0),
        ]
        .into_iter()
        .filter(|c| c != self)
        .collect()
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        if out.len() >= MAX_CANDIDATES {
                            break;
                        }
                        let mut copy = self.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_scalar_is_minimal() {
        assert!(0.0f64.shrink().is_empty());
        assert!(0usize.shrink().is_empty());
        assert!(0u64.shrink().is_empty());
        assert!(false.shrink().is_empty());
    }

    #[test]
    fn f64_shrinks_toward_zero_and_integers() {
        let c = 3.7f64.shrink();
        assert!(c.contains(&0.0));
        assert!(c.contains(&3.0));
        assert!(c.contains(&1.85));
    }

    #[test]
    fn usize_candidates_strictly_decrease() {
        for n in [1usize, 2, 7, 1000] {
            for c in n.shrink() {
                assert!(c < n);
            }
        }
    }

    #[test]
    fn vec_shrinks_length_and_elements() {
        let v = vec![4.0f64, 2.0];
        let cands = v.shrink();
        assert!(cands.contains(&vec![4.0]));
        assert!(cands.iter().any(|c| c == &vec![0.0, 2.0]));
    }

    #[test]
    fn tuple_shrinks_each_coordinate() {
        let cands = (2usize, 1.0f64).shrink();
        assert!(cands.contains(&(1, 1.0)));
        assert!(cands.contains(&(2, 0.0)));
    }

    #[test]
    fn matrix_shrinks_to_zero_matrix() {
        let m = Matrix::from_rows(&[&[1.5, -2.0]]);
        let cands = m.shrink();
        assert!(cands.contains(&Matrix::zeros(1, 2)));
        assert!(Matrix::zeros(2, 2).shrink().is_empty());
    }
}
