//! Plain-text persistence for trained parameters.
//!
//! A deliberately simple, dependency-free format (one header line per
//! parameter followed by its row-major values) so trained models can be
//! saved and shipped without a binary serialisation crate:
//!
//! ```text
//! rihgcn-params v1
//! param <name> <rows> <cols>
//! <v> <v> ...
//! ```

use st_nn::ParamStore;
use st_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error returned when loading persisted parameters fails.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not in the expected format.
    Format(String),
    /// The file's parameters do not match the model (name/shape/order).
    Mismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "malformed parameter file: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "parameter mismatch: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

const HEADER: &str = "rihgcn-params v1";

/// Writes every parameter of the store.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params<W: Write>(store: &ParamStore, mut w: W) -> Result<(), PersistError> {
    writeln!(w, "{HEADER}")?;
    for id in store.ids() {
        let m = store.value(id);
        writeln!(w, "param {} {} {}", store.name(id), m.rows(), m.cols())?;
        let mut line = String::new();
        for (i, v) in m.as_slice().iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{v:?}")); // Debug float formatting round-trips exactly
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Loads parameters into an existing store; names, shapes and order must
/// match exactly (i.e. the model must be built with the same configuration).
///
/// # Errors
///
/// Returns [`PersistError::Format`] for malformed input and
/// [`PersistError::Mismatch`] when the stored parameters do not line up with
/// the model's.
pub fn load_params<R: BufRead>(store: &mut ParamStore, r: R) -> Result<(), PersistError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| PersistError::Format("empty file".into()))??;
    if header.trim() != HEADER {
        return Err(PersistError::Format(format!("bad header: {header:?}")));
    }

    let ids: Vec<_> = store.ids().collect();
    for &id in &ids {
        let meta = lines
            .next()
            .ok_or_else(|| PersistError::Format("unexpected end of file".into()))??;
        let parts: Vec<&str> = meta.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "param" {
            return Err(PersistError::Format(format!("bad param header: {meta:?}")));
        }
        let (name, rows, cols) = (
            parts[1],
            parts[2]
                .parse::<usize>()
                .map_err(|e| PersistError::Format(e.to_string()))?,
            parts[3]
                .parse::<usize>()
                .map_err(|e| PersistError::Format(e.to_string()))?,
        );
        if name != store.name(id) {
            return Err(PersistError::Mismatch(format!(
                "expected parameter {:?}, file has {:?}",
                store.name(id),
                name
            )));
        }
        if (rows, cols) != store.value(id).shape() {
            return Err(PersistError::Mismatch(format!(
                "parameter {name}: expected shape {:?}, file has {rows}x{cols}",
                store.value(id).shape()
            )));
        }
        let data_line = lines
            .next()
            .ok_or_else(|| PersistError::Format("missing data line".into()))??;
        let values: Result<Vec<f64>, _> = data_line
            .split_whitespace()
            .map(str::parse::<f64>)
            .collect();
        let values = values.map_err(|e| PersistError::Format(e.to_string()))?;
        if values.len() != rows * cols {
            return Err(PersistError::Format(format!(
                "parameter {name}: expected {} values, found {}",
                rows * cols,
                values.len()
            )));
        }
        store.set_value(id, Matrix::from_vec(rows, cols, values));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{rng, uniform_matrix};

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add("a.w", uniform_matrix(&mut rng(1), 2, 3, -1.0, 1.0));
        store.add("a.b", uniform_matrix(&mut rng(2), 1, 3, -1.0, 1.0));
        store
    }

    #[test]
    fn round_trip_is_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut fresh = sample_store();
        // Perturb, then load back.
        let ids: Vec<_> = fresh.ids().collect();
        fresh.set_value(ids[0], st_tensor::Matrix::zeros(2, 3));
        load_params(&mut fresh, buf.as_slice()).unwrap();
        for (a, b) in store.ids().zip(fresh.ids()) {
            assert_eq!(store.value(a), fresh.value(b));
        }
    }

    #[test]
    fn rejects_bad_header() {
        let mut store = sample_store();
        let err = load_params(&mut store, "nonsense\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn rejects_name_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("different", st_tensor::Matrix::zeros(2, 3));
        other.add("a.b", st_tensor::Matrix::zeros(1, 3));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a.w", st_tensor::Matrix::zeros(3, 2));
        other.add("a.b", st_tensor::Matrix::zeros(1, 3));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)));
    }

    #[test]
    fn rejects_truncated_file() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        let mut fresh = sample_store();
        let err = load_params(&mut fresh, truncated.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }
}
