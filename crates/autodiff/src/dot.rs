//! Graphviz export of a tape's computation graph.
//!
//! `Tape::to_dot` renders the recorded operations as a DOT digraph —
//! invaluable when debugging why a gradient does (or does not) reach a
//! parameter. Render with e.g. `dot -Tsvg graph.dot -o graph.svg`.

use crate::tape::Tape;
use std::fmt::Write;

impl Tape {
    /// Renders the recorded computation as a Graphviz DOT digraph.
    ///
    /// Parameters are drawn as boxes, constants as grey ellipses, and
    /// operations as white ellipses labelled with the operation name and
    /// output shape. Edges point from inputs to the nodes consuming them.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph tape {\n  rankdir=LR;\n");
        for idx in 0..self.len() {
            let (label, parents, is_leaf, needs_grad) = self.node_summary(idx);
            let shape_attr = if is_leaf && needs_grad {
                "shape=box, style=filled, fillcolor=lightblue"
            } else if is_leaf {
                "shape=ellipse, style=filled, fillcolor=lightgrey"
            } else {
                "shape=ellipse"
            };
            let _ = writeln!(out, "  n{idx} [label=\"{label}\", {shape_attr}];");
            for p in parents {
                let _ = writeln!(out, "  n{p} -> n{idx};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::Matrix;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut tape = Tape::new();
        let w = tape.parameter(Matrix::ones(2, 2));
        let x = tape.constant(Matrix::ones(2, 2));
        let y = tape.matmul(x, w);
        let loss = tape.mean(y);
        let dot = tape.to_dot();
        assert!(dot.starts_with("digraph tape {"));
        // Four nodes...
        for i in 0..4 {
            assert!(
                dot.contains(&format!("n{i} [label=")),
                "missing node {i}: {dot}"
            );
        }
        // ...and the matmul's two input edges plus the mean's one.
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("n2 -> n3"));
        // Parameter styled as a box, constant as grey.
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=lightgrey"));
        let _ = (w, loss);
    }

    #[test]
    fn dot_of_empty_tape_is_valid() {
        let tape = Tape::new();
        let dot = tape.to_dot();
        assert!(dot.starts_with("digraph tape {"));
        assert!(dot.ends_with("}\n"));
    }
}
