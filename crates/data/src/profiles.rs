//! Historical time-of-day profiles and temporal-graph construction.
//!
//! The HGCN's temporal graphs are built from "historical averages of traffic
//! features at the same time period over the past days" (paper §III-D).
//! This module computes those per-node, per-slot averages from observed
//! entries only, and turns them into per-interval DTW distance matrices /
//! adjacency matrices.

use crate::TrafficDataset;
use st_graph::{gaussian_adjacency, Interval, SeriesDistance};
use st_tensor::Matrix;

/// Per-node historical averages over the daily cycle.
///
/// `profiles[n]` is a `slots_per_day × D` matrix whose row `s` is the mean
/// of node `n`'s observed values at time-of-day slot `s` across all days.
#[derive(Debug, Clone, PartialEq)]
pub struct DayProfiles {
    profiles: Vec<Matrix>,
    slots_per_day: usize,
}

impl DayProfiles {
    /// Computes historical profiles from a dataset's observed entries.
    ///
    /// Slots that were never observed for a node fall back to the node's
    /// overall observed mean (or 0 when the node has no observations).
    pub fn from_dataset(ds: &TrafficDataset) -> Self {
        Self::from_dataset_filtered(ds, |_| true)
    }

    /// Like [`DayProfiles::from_dataset`] but averaging only over days for
    /// which `day_filter(day_index)` is true — the building block for the
    /// paper's weekly extension ("time intervals across weeks/months"),
    /// e.g. separate weekday and weekend temporal graphs.
    ///
    /// # Examples
    ///
    /// ```
    /// use st_data::{generate_pems, DayProfiles, PemsConfig};
    ///
    /// let ds = generate_pems(&PemsConfig { num_nodes: 3, num_days: 7, ..Default::default() });
    /// let weekdays = DayProfiles::from_dataset_filtered(&ds, |day| day % 7 < 5);
    /// let weekends = DayProfiles::from_dataset_filtered(&ds, |day| day % 7 >= 5);
    /// assert_eq!(weekdays.num_nodes(), weekends.num_nodes());
    /// ```
    pub fn from_dataset_filtered(
        ds: &TrafficDataset,
        mut day_filter: impl FnMut(usize) -> bool,
    ) -> Self {
        let slots = ds.slots_per_day();
        let (n, d, t) = ds.values.shape();
        let mut profiles = Vec::with_capacity(n);
        for node in 0..n {
            let mut sums = Matrix::zeros(slots, d);
            let mut counts = Matrix::zeros(slots, d);
            let mut node_sum = vec![0.0; d];
            let mut node_count = vec![0usize; d];
            for time in 0..t {
                if !day_filter(time / slots) {
                    continue;
                }
                let slot = time % slots;
                for f in 0..d {
                    if ds.mask[(node, f, time)] != 0.0 {
                        sums[(slot, f)] += ds.values[(node, f, time)];
                        counts[(slot, f)] += 1.0;
                        node_sum[f] += ds.values[(node, f, time)];
                        node_count[f] += 1;
                    }
                }
            }
            let profile = Matrix::from_fn(slots, d, |s, f| {
                if counts[(s, f)] > 0.0 {
                    sums[(s, f)] / counts[(s, f)]
                } else if node_count[f] > 0 {
                    node_sum[f] / node_count[f] as f64
                } else {
                    0.0
                }
            });
            profiles.push(profile);
        }
        Self {
            profiles,
            slots_per_day: slots,
        }
    }

    /// Convenience pair for the weekly extension: profiles computed over
    /// weekdays (days 0–4 of each week) and weekends (days 5–6).
    pub fn weekday_weekend(ds: &TrafficDataset) -> (Self, Self) {
        (
            Self::from_dataset_filtered(ds, |day| day % 7 < 5),
            Self::from_dataset_filtered(ds, |day| day % 7 >= 5),
        )
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.profiles.len()
    }

    /// Timestamps per day.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// The per-node profile matrices (`slots_per_day × D` each).
    pub fn profiles(&self) -> &[Matrix] {
        &self.profiles
    }

    /// Pairwise node distance matrix over one time interval: the mean DTW
    /// distance between the nodes' interval sub-profiles across features
    /// (the paper's choice; see [`DayProfiles::interval_distances_with`]
    /// for ERP/LCSS).
    ///
    /// # Panics
    ///
    /// Panics if the interval exceeds the daily cycle.
    pub fn interval_distances(&self, interval: Interval) -> Matrix {
        self.interval_distances_with(interval, SeriesDistance::Dtw)
    }

    /// Pairwise node distances over one interval under any
    /// [`SeriesDistance`] (DTW / ERP / LCSS — the paper's §III-D options).
    ///
    /// # Panics
    ///
    /// Panics if the interval exceeds the daily cycle.
    pub fn interval_distances_with(&self, interval: Interval, measure: SeriesDistance) -> Matrix {
        assert!(
            interval.end <= self.slots_per_day,
            "interval {:?} exceeds the daily cycle",
            interval
        );
        let series: Vec<Vec<Vec<f64>>> = self
            .profiles
            .iter()
            .map(|p| {
                (0..p.cols())
                    .map(|f| (interval.start..interval.end).map(|s| p[(s, f)]).collect())
                    .collect()
            })
            .collect();
        // The O(N²) pair sweep parallelises across st-par workers (with
        // bit-identical results at any thread count) inside st-graph.
        st_graph::pairwise_distances(&series, measure)
    }

    /// Temporal-graph adjacency for one interval (paper Eq. 8 applied to
    /// interval DTW distances).
    pub fn interval_adjacency(&self, interval: Interval, epsilon: f64) -> Matrix {
        gaussian_adjacency(&self.interval_distances(interval), None, epsilon)
    }

    /// Temporal-graph adjacency under an alternative distance measure.
    pub fn interval_adjacency_with(
        &self,
        interval: Interval,
        epsilon: f64,
        measure: SeriesDistance,
    ) -> Matrix {
        gaussian_adjacency(
            &self.interval_distances_with(interval, measure),
            None,
            epsilon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_pems, PemsConfig, TrafficDataset};
    use st_graph::RoadNetwork;
    use st_tensor::Tensor3;

    fn periodic_dataset() -> TrafficDataset {
        // Three nodes: 0 and 1 share a daily pattern, 2 is phase-inverted.
        let slots = 288;
        let days = 4;
        let values = Tensor3::from_fn(3, 1, slots * days, |n, _, t| {
            let phase = 2.0 * std::f64::consts::PI * (t % slots) as f64 / slots as f64;
            match n {
                0 => phase.sin() * 10.0 + 50.0,
                1 => phase.sin() * 10.0 + 52.0,
                _ => -phase.sin() * 10.0 + 51.0,
            }
        });
        let mask = Tensor3::ones(3, 1, slots * days);
        TrafficDataset::new("periodic", values, mask, RoadNetwork::corridor(3, 1.0), 5)
    }

    #[test]
    fn profile_averages_across_days() {
        let ds = periodic_dataset();
        let profiles = DayProfiles::from_dataset(&ds);
        assert_eq!(profiles.num_nodes(), 3);
        assert_eq!(profiles.profiles()[0].shape(), (288, 1));
        // The signal repeats daily, so the profile equals one cycle.
        let expected = ds.values[(0, 0, 10)];
        assert!((profiles.profiles()[0][(10, 0)] - expected).abs() < 1e-9);
    }

    #[test]
    fn masked_entries_excluded_from_profile() {
        let mut ds = periodic_dataset();
        // Hide day 0's slot 10 for node 0 and distort its value wildly.
        ds.values[(0, 0, 10)] = 1e6;
        ds.mask[(0, 0, 10)] = 0.0;
        let profiles = DayProfiles::from_dataset(&ds);
        // Average over the remaining 3 days = the clean value.
        let clean = ds.values[(0, 0, 288 + 10)];
        assert!((profiles.profiles()[0][(10, 0)] - clean).abs() < 1e-9);
    }

    #[test]
    fn similar_patterns_are_closer() {
        let ds = periodic_dataset();
        let profiles = DayProfiles::from_dataset(&ds);
        let interval = Interval::new(0, 288);
        let dist = profiles.interval_distances(interval);
        // Nodes 0 and 1 share the pattern; node 2 is inverted.
        assert!(dist[(0, 1)] < dist[(0, 2)]);
        assert!(dist[(1, 2)] > dist[(0, 1)]);
        // Symmetric with zero diagonal.
        assert_eq!(dist[(0, 2)], dist[(2, 0)]);
        assert_eq!(dist[(1, 1)], 0.0);
    }

    #[test]
    fn adjacency_links_similar_nodes_strongest() {
        let ds = periodic_dataset();
        let profiles = DayProfiles::from_dataset(&ds);
        let adj = profiles.interval_adjacency(Interval::new(0, 144), 0.0);
        assert!(adj[(0, 1)] > adj[(0, 2)]);
    }

    #[test]
    fn works_on_generated_pems() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 5,
            num_days: 5,
            ..Default::default()
        });
        let profiles = DayProfiles::from_dataset(&ds);
        let adj = profiles.interval_adjacency(Interval::new(84, 132), 0.1);
        assert_eq!(adj.shape(), (5, 5));
        assert!(adj.is_finite());
    }

    #[test]
    fn unobserved_node_gets_zero_profile() {
        let mut ds = periodic_dataset();
        for t in 0..ds.num_times() {
            ds.mask[(2, 0, t)] = 0.0;
        }
        let profiles = DayProfiles::from_dataset(&ds);
        assert_eq!(profiles.profiles()[2].sum(), 0.0);
    }

    #[test]
    fn weekday_weekend_profiles_differ_on_pems() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 3,
            num_days: 14,
            ..Default::default()
        });
        let (weekday, weekend) = DayProfiles::weekday_weekend(&ds);
        // Morning rush slot: weekdays are slower than weekends.
        let rush = (7 * 60 + 45) / 5;
        assert!(
            weekday.profiles()[0][(rush, 0)] + 3.0 < weekend.profiles()[0][(rush, 0)],
            "weekday rush {} should be well below weekend {}",
            weekday.profiles()[0][(rush, 0)],
            weekend.profiles()[0][(rush, 0)]
        );
    }

    #[test]
    fn day_filter_restricts_averaging() {
        let mut ds = periodic_dataset(); // 4 identical days
                                         // Corrupt day 3 for node 0 at slot 5.
        ds.values[(0, 0, 3 * 288 + 5)] = 1e6;
        let clean = DayProfiles::from_dataset_filtered(&ds, |day| day < 3);
        let expected = ds.values[(0, 0, 5)];
        assert!((clean.profiles()[0][(5, 0)] - expected).abs() < 1e-9);
    }

    #[test]
    fn alternative_measures_produce_valid_adjacencies() {
        let ds = periodic_dataset();
        let profiles = DayProfiles::from_dataset(&ds);
        let iv = Interval::new(0, 144);
        for measure in [
            SeriesDistance::Dtw,
            SeriesDistance::Erp { gap: 0.0 },
            SeriesDistance::Lcss { epsilon: 1.0 },
        ] {
            let adj = profiles.interval_adjacency_with(iv, 0.0, measure);
            assert_eq!(adj.shape(), (3, 3), "{measure:?}");
            assert!(adj.is_finite(), "{measure:?}");
            // Similar nodes (0, 1) at least as connected as dissimilar (0, 2).
            assert!(adj[(0, 1)] >= adj[(0, 2)], "{measure:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the daily cycle")]
    fn interval_out_of_range_panics() {
        let ds = periodic_dataset();
        let profiles = DayProfiles::from_dataset(&ds);
        let _ = profiles.interval_distances(Interval::new(0, 300));
    }
}
