//! Heap-allocation counting for the memory benchmarks.
//!
//! The counters live in [`st_obs::alloc`] (so the trainer's epoch stats and
//! the benchmarks share one set of process-global counters); this module
//! re-exports them under the historical `rihgcn_bench::alloc` path. Install
//! the allocator with
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: rihgcn_bench::alloc::CountingAlloc = rihgcn_bench::alloc::CountingAlloc;
//! ```
//!
//! **in a binary or test crate only** — installing it from a library would
//! silently impose the wrapper on every binary in the workspace.

pub use st_obs::alloc::{AllocSnapshot, CountingAlloc};
