//! Runtime knobs for the parallel kernels.
//!
//! Kernels in this crate (and the pairwise-distance builder in `st-graph`)
//! only fan out across `st-par` workers when the estimated work of a call
//! exceeds a global threshold, so small matrices keep their zero-overhead
//! serial path. The threshold is runtime-settable because tests and
//! benchmarks need to force the parallel path at sizes where exhaustive
//! finite-difference checking is still affordable.
//!
//! Changing the threshold never changes results: every parallel kernel in
//! the workspace evaluates floating-point operations in the same order as
//! its serial path (see the `st-par` crate docs for the contract).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default work threshold (~flops per call) above which kernels go
/// parallel: roughly a 128³ matmul, i.e. around a millisecond of serial
/// work — comfortably above the cost of spawning scoped workers.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 21;

static PARALLEL_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_THRESHOLD);

/// The current work threshold (in estimated flops) for parallel dispatch.
pub fn parallel_threshold() -> usize {
    PARALLEL_THRESHOLD.load(Ordering::Relaxed)
}

/// Sets the work threshold for parallel dispatch.
///
/// `1` forces every kernel onto the parallel path (used by the gradient
/// checks and the cross-thread determinism suite); `usize::MAX` pins
/// everything serial. Results are bit-identical either way.
pub fn set_parallel_threshold(flops: usize) {
    PARALLEL_THRESHOLD.store(flops, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_round_trips() {
        let before = parallel_threshold();
        set_parallel_threshold(123);
        assert_eq!(parallel_threshold(), 123);
        set_parallel_threshold(before);
        assert_eq!(parallel_threshold(), before);
    }
}
