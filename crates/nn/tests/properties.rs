//! Property-based tests over optimiser and layer invariants.

use proptest::prelude::*;
use st_nn::{Activation, Adam, ChebGcn, LstmCell, ParamStore, Session};
use st_tensor::{rng, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adam_steps_oppose_gradient_sign(g in -100.0f64..100.0) {
        prop_assume!(g.abs() > 1e-6);
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_rows(&[&[1.0]]));
        let mut adam = Adam::new(&store, 0.01);
        store.accumulate_grad(p, &Matrix::from_rows(&[&[g]]));
        adam.step(&mut store);
        let moved = store.value(p)[(0, 0)] - 1.0;
        prop_assert!(moved * g < 0.0, "step {moved} must oppose gradient {g}");
        // First Adam step magnitude is bounded by the learning rate.
        prop_assert!(moved.abs() <= 0.01 + 1e-9);
    }

    #[test]
    fn adam_remains_finite_under_extreme_gradients(scale in 1.0f64..1e12) {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_rows(&[&[0.5]]));
        let mut adam = Adam::new(&store, 0.01);
        for i in 0..5 {
            store.zero_grads();
            let g = if i % 2 == 0 { scale } else { -scale };
            store.accumulate_grad(p, &Matrix::from_rows(&[&[g]]));
            adam.step(&mut store);
            prop_assert!(store.value(p)[(0, 0)].is_finite());
        }
    }

    #[test]
    fn clip_never_increases_norm(values in proptest::collection::vec(-50.0f64..50.0, 4), cap in 0.1f64..20.0) {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::zeros(2, 2));
        store.accumulate_grad(p, &Matrix::from_vec(2, 2, values));
        let before = store.grad_norm();
        store.clip_grad_norm(cap);
        let after = store.grad_norm();
        prop_assert!(after <= before + 1e-12);
        prop_assert!(after <= cap + 1e-9);
    }

    #[test]
    fn lstm_hidden_state_bounded(data in proptest::collection::vec(-50.0f64..50.0, 6)) {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng(1), 3, 4, "lstm");
        let mut sess = Session::new(&store);
        let state = cell.zero_state(&mut sess, 2);
        let x = sess.constant(Matrix::from_vec(2, 3, data));
        let next = cell.step(&mut sess, &store, x, &state);
        for &h in sess.tape.value(next.h).as_slice() {
            prop_assert!(h.abs() <= 1.0, "|h| = {h} exceeds tanh bound");
        }
    }

    #[test]
    fn gcn_zero_input_gives_bias_only_output(seed in 0u64..200) {
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(seed), 2, 3, 3, Activation::Identity, "g");
        let lap = Matrix::identity(4);
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::zeros(4, 2));
        let y = gcn.forward(&mut sess, &store, &lap, x);
        // Bias is initialised to zero, so the output must be exactly zero.
        prop_assert_eq!(sess.tape.value(y).max_abs(), 0.0);
    }

    #[test]
    fn session_grads_scale_linearly(factor in 1.0f64..10.0) {
        // d(mean(c·p))/dp = c/len — doubling the scale doubles the gradient.
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::ones(2, 2));
        let grad_at = |c: f64, store: &ParamStore| -> f64 {
            let mut sess = Session::new(store);
            let v = sess.var(store, p);
            let y = sess.tape.scale(v, c);
            let loss = sess.tape.mean(y);
            sess.backward(loss);
            sess.tape.grad(v)[(0, 0)]
        };
        let g1 = grad_at(1.0, &store);
        let gf = grad_at(factor, &store);
        prop_assert!((gf - factor * g1).abs() < 1e-9);
    }
}
