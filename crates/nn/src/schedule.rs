//! Learning-rate schedules.
//!
//! The paper trains with a constant 1e-3; these schedules are opt-in
//! extensions for longer runs (`TrainConfig::lr_schedule` in
//! `rihgcn-core`). All schedules are pure functions of the epoch index, so
//! training stays deterministic and resumable.

/// A deterministic learning-rate schedule over epochs.
///
/// # Examples
///
/// ```
/// use st_nn::LrSchedule;
///
/// let step = LrSchedule::StepDecay { every: 10, factor: 0.5 };
/// assert_eq!(step.at(1e-3, 0), 1e-3);
/// assert_eq!(step.at(1e-3, 10), 5e-4);
/// assert_eq!(step.at(1e-3, 20), 2.5e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// The base learning rate every epoch (the paper's setting).
    #[default]
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays.
        every: usize,
        /// Multiplicative factor per decay (in `(0, 1]`).
        factor: f64,
    },
    /// Cosine annealing from the base rate down to `min_factor × base`
    /// over `period` epochs, then flat at the minimum.
    Cosine {
        /// Epochs to reach the minimum.
        period: usize,
        /// Final rate as a fraction of the base rate.
        min_factor: f64,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given a base rate.
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are degenerate (`every == 0`,
    /// `factor` outside `(0, 1]`, `period == 0`, or `min_factor` outside
    /// `[0, 1]`).
    pub fn at(&self, base_lr: f64, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "step decay needs every > 0");
                assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
                base_lr * factor.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { period, min_factor } => {
                assert!(period > 0, "cosine needs period > 0");
                assert!((0.0..=1.0).contains(&min_factor), "min_factor in [0, 1]");
                let progress = (epoch as f64 / period as f64).min(1.0);
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
                base_lr * (min_factor + (1.0 - min_factor) * cos)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        for epoch in [0, 5, 100] {
            assert_eq!(LrSchedule::Constant.at(1e-3, epoch), 1e-3);
        }
        assert_eq!(LrSchedule::default(), LrSchedule::Constant);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            every: 5,
            factor: 0.5,
        };
        assert_eq!(s.at(1.0, 0), 1.0);
        assert_eq!(s.at(1.0, 4), 1.0);
        assert_eq!(s.at(1.0, 5), 0.5);
        assert_eq!(s.at(1.0, 14), 0.25);
    }

    #[test]
    fn cosine_monotone_to_floor() {
        let s = LrSchedule::Cosine {
            period: 10,
            min_factor: 0.1,
        };
        let values: Vec<f64> = (0..=12).map(|e| s.at(1.0, e)).collect();
        assert_eq!(values[0], 1.0);
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "cosine must not increase");
        }
        assert!((values[10] - 0.1).abs() < 1e-12);
        assert_eq!(values[12], values[10], "flat after the period");
    }

    #[test]
    #[should_panic(expected = "every > 0")]
    fn degenerate_step_rejected() {
        let _ = LrSchedule::StepDecay {
            every: 0,
            factor: 0.5,
        }
        .at(1.0, 1);
    }
}
