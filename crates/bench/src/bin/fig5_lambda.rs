//! Figure 5: imputation and prediction performance vs the imputation-loss
//! weight λ (PeMS, 40% missing). The paper reports imputation improving
//! monotonically with λ while prediction is flat in λ ∈ (0.001, 5) and
//! degrades at the extremes.

use rihgcn_bench::{pems_at, rihgcn_imputation, rihgcn_prediction, train_rihgcn, Bench, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let lambdas: &[f64] = if scale.name == "quick" {
        &[0.001, 1.0, 10.0]
    } else {
        &[0.001, 0.01, 0.1, 1.0, 5.0, 10.0]
    };
    println!("Figure 5 — PeMS, 40% missing, scale `{}`", scale.name);

    let ds = pems_at(&scale, 0.4, 700);
    let bench = Bench::prepare(&ds, &scale, 12, 12);

    println!(
        "\n{:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "lambda", "imp MAE", "imp RMSE", "pred MAE", "pred RMSE"
    );
    println!("{}", "-".repeat(55));
    for &lambda in lambdas {
        let t0 = Instant::now();
        let model = train_rihgcn(&bench, 4, lambda);
        let imp = rihgcn_imputation(&model, &bench);
        let pred = rihgcn_prediction(&model, &bench);
        println!(
            "{lambda:>8} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            imp.mae, imp.rmse, pred.mae, pred.rmse
        );
        eprintln!("lambda={lambda} done in {:?}", t0.elapsed());
    }
}
