//! Property-based tests over optimiser and layer invariants.

use st_check::{prop_assert, prop_assert_eq, prop_assume, Check};
use st_nn::{Activation, Adam, ChebGcn, LstmCell, ParamStore, Session};
use st_tensor::{rng, Matrix};

#[test]
fn adam_steps_oppose_gradient_sign() {
    Check::new("adam_steps_oppose_gradient_sign").cases(48).run(
        |g| g.f64_in(-100.0, 100.0),
        |&g| {
            prop_assume!(g.abs() > 1e-6);
            let mut store = ParamStore::new();
            let p = store.add("p", Matrix::from_rows(&[&[1.0]]));
            let mut adam = Adam::new(&store, 0.01);
            store.accumulate_grad(p, &Matrix::from_rows(&[&[g]]));
            adam.step(&mut store);
            let moved = store.value(p)[(0, 0)] - 1.0;
            prop_assert!(moved * g < 0.0, "step {moved} must oppose gradient {g}");
            // First Adam step magnitude is bounded by the learning rate.
            prop_assert!(moved.abs() <= 0.01 + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn adam_remains_finite_under_extreme_gradients() {
    Check::new("adam_remains_finite_under_extreme_gradients")
        .cases(48)
        .run(
            |g| g.f64_in(1.0, 1e12),
            |&scale| {
                prop_assume!(scale >= 1.0);
                let mut store = ParamStore::new();
                let p = store.add("p", Matrix::from_rows(&[&[0.5]]));
                let mut adam = Adam::new(&store, 0.01);
                for i in 0..5 {
                    store.zero_grads();
                    let g = if i % 2 == 0 { scale } else { -scale };
                    store.accumulate_grad(p, &Matrix::from_rows(&[&[g]]));
                    adam.step(&mut store);
                    prop_assert!(store.value(p)[(0, 0)].is_finite());
                }
                Ok(())
            },
        );
}

#[test]
fn clip_never_increases_norm() {
    Check::new("clip_never_increases_norm").cases(48).run(
        |g| (g.vec_f64(4, -50.0, 50.0), g.f64_in(0.1, 20.0)),
        |(values, cap)| {
            prop_assume!(values.len() == 4 && *cap > 0.0);
            let mut store = ParamStore::new();
            let p = store.add("p", Matrix::zeros(2, 2));
            store.accumulate_grad(p, &Matrix::from_vec(2, 2, values.clone()));
            let before = store.grad_norm();
            store.clip_grad_norm(*cap);
            let after = store.grad_norm();
            prop_assert!(after <= before + 1e-12);
            prop_assert!(after <= cap + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn lstm_hidden_state_bounded() {
    Check::new("lstm_hidden_state_bounded").cases(48).run(
        |g| g.vec_f64(6, -50.0, 50.0),
        |data| {
            prop_assume!(data.len() == 6);
            let mut store = ParamStore::new();
            let cell = LstmCell::new(&mut store, &mut rng(1), 3, 4, "lstm");
            let mut sess = Session::new(&store);
            let state = cell.zero_state(&mut sess, 2);
            let x = sess.constant(Matrix::from_vec(2, 3, data.clone()));
            let next = cell.step(&mut sess, &store, x, &state);
            for &h in sess.tape.value(next.h).as_slice() {
                prop_assert!(h.abs() <= 1.0, "|h| = {h} exceeds tanh bound");
            }
            Ok(())
        },
    );
}

#[test]
fn gcn_zero_input_gives_bias_only_output() {
    Check::new("gcn_zero_input_gives_bias_only_output")
        .cases(48)
        .run(
            |g| g.u64_in(0, 200),
            |&seed| {
                let mut store = ParamStore::new();
                let gcn = ChebGcn::new(
                    &mut store,
                    &mut rng(seed),
                    2,
                    3,
                    3,
                    Activation::Identity,
                    "g",
                );
                let lap = Matrix::identity(4);
                let mut sess = Session::new(&store);
                let x = sess.constant(Matrix::zeros(4, 2));
                let y = gcn.forward(&mut sess, &store, &lap, x);
                // Bias is initialised to zero, so the output must be exactly zero.
                prop_assert_eq!(sess.tape.value(y).max_abs(), 0.0);
                Ok(())
            },
        );
}

#[test]
fn session_grads_scale_linearly() {
    Check::new("session_grads_scale_linearly").cases(48).run(
        |g| g.f64_in(1.0, 10.0),
        |&factor| {
            prop_assume!(factor >= 1.0);
            // d(mean(c·p))/dp = c/len — doubling the scale doubles the gradient.
            let mut store = ParamStore::new();
            let p = store.add("p", Matrix::ones(2, 2));
            let grad_at = |c: f64, store: &ParamStore| -> f64 {
                let mut sess = Session::new(store);
                let v = sess.var(store, p);
                let y = sess.tape.scale(v, c);
                let loss = sess.tape.mean(y);
                sess.backward(loss);
                sess.tape.grad(v)[(0, 0)]
            };
            let g1 = grad_at(1.0, &store);
            let gf = grad_at(factor, &store);
            prop_assert!((gf - factor * g1).abs() < 1e-9);
            Ok(())
        },
    );
}
