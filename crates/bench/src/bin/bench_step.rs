//! Allocation-tracking training-step benchmark.
//!
//! Measures wall-clock time and heap-allocator traffic per RIHGCN training
//! step (forward + backward + clip + Adam), using the counting global
//! allocator from `rihgcn_bench::alloc`. Step 1 runs with an empty buffer
//! pool — every tape buffer is a pool miss, making it allocation-equivalent
//! to the historical fresh-`Tape::new()`-per-step path — while steps ≥ 2
//! reuse the recycled session, so the `alloc_reduction` metric is exactly
//! the saving of the zero-reallocation training loop.
//!
//! ```text
//! cargo run --release -p rihgcn-bench --bin bench_step -- [--smoke] [--steps N] [--out FILE]
//! ```
//!
//! Writes a JSON report (default `BENCH_step.json`) and exits non-zero if
//! any metric is missing/non-finite or the steady-state allocation
//! reduction falls below 90%.

use rihgcn_bench::alloc::{AllocSnapshot, CountingAlloc};
use rihgcn_core::{Forecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, WindowSampler};
use st_nn::Adam;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Minimum steady-state allocation reduction the pool must deliver.
const MIN_REDUCTION: f64 = 0.9;

struct Args {
    smoke: bool,
    steps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        steps: 0,
        out: "BENCH_step.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--steps" => {
                let v = it.next().expect("--steps needs a value");
                args.steps = v.parse().expect("--steps must be an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_step [--smoke] [--steps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if args.steps == 0 {
        args.steps = if args.smoke { 4 } else { 10 };
    }
    assert!(args.steps >= 2, "need at least 2 steps to measure reuse");
    args
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();

    let (nodes, graphs, gcn_dim, lstm_dim, history, horizon) = if args.smoke {
        (4, 2, 4, 6, 4, 2)
    } else {
        (8, 4, 8, 16, 12, 12)
    };
    let ds = generate_pems(&PemsConfig {
        num_nodes: nodes,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut st_tensor::rng(8));
    let cfg = RihgcnConfig {
        gcn_dim,
        lstm_dim,
        num_temporal_graphs: graphs,
        history,
        horizon,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&ds, cfg);
    let sample = WindowSampler::new(history, horizon, 1).window_at(&ds, 0);
    let mut adam = Adam::new(model.params(), 1e-3);

    let mut allocs = Vec::with_capacity(args.steps);
    let mut bytes = Vec::with_capacity(args.steps);
    let mut times = Vec::with_capacity(args.steps);
    let mut stats_after_step1 = None;
    for step in 0..args.steps {
        model.params_mut().zero_grads();
        let snap = AllocSnapshot::take();
        let start = Instant::now();
        let loss = model.accumulate_gradients(&sample);
        model.params_mut().clip_grad_norm(5.0);
        adam.step(model.params_mut());
        times.push(start.elapsed().as_secs_f64() * 1e3);
        allocs.push(snap.allocations_since());
        bytes.push(snap.bytes_since());
        assert!(loss.is_finite(), "training loss diverged at step {step}");
        if step == 0 {
            stats_after_step1 = model.training_pool_stats();
        }
    }

    let steady = allocs.len() - 1;
    let allocs_step1 = allocs[0];
    let bytes_step1 = bytes[0];
    let allocs_per_step = allocs[1..].iter().sum::<u64>() as f64 / steady as f64;
    let bytes_per_step = bytes[1..].iter().sum::<u64>() as f64 / steady as f64;
    let time_per_step_ms = times[1..].iter().sum::<f64>() / steady as f64;
    let alloc_reduction = 1.0 - allocs_per_step / allocs_step1.max(1) as f64;
    // Steady-state hit rate over steps ≥ 2 only — the same delta the
    // alloc_regression gate measures — so the cold pool of step 1 doesn't
    // drag the reported rate with short (smoke) step counts.
    let pool_hit_rate = match (stats_after_step1, model.training_pool_stats()) {
        (Some(s1), Some(sf)) => {
            let hits = sf.hits - s1.hits;
            let misses = sf.misses - s1.misses;
            hits as f64 / (hits + misses).max(1) as f64
        }
        _ => f64::NAN,
    };

    let json = format!(
        "{{\n  \"bench\": \"rihgcn_training_step\",\n  \"smoke\": {},\n  \"threads\": {},\n  \"steps\": {},\n  \"time_per_step_ms\": {},\n  \"allocs_step1\": {},\n  \"bytes_step1\": {},\n  \"allocs_per_step\": {},\n  \"bytes_per_step\": {},\n  \"alloc_reduction\": {},\n  \"pool_hit_rate\": {}\n}}\n",
        args.smoke,
        st_par::num_threads(),
        args.steps,
        json_f64(time_per_step_ms),
        allocs_step1,
        bytes_step1,
        json_f64(allocs_per_step),
        json_f64(bytes_per_step),
        json_f64(alloc_reduction),
        json_f64(pool_hit_rate),
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");
    eprintln!(
        "step 1: {allocs_step1} allocs / {bytes_step1} B; steady state: \
         {allocs_per_step:.1} allocs / {bytes_per_step:.0} B per step \
         ({:.1}% reduction, pool hit rate {:.1}%)",
        alloc_reduction * 100.0,
        pool_hit_rate * 100.0
    );

    let metrics = [
        ("time_per_step_ms", time_per_step_ms),
        ("allocs_per_step", allocs_per_step),
        ("bytes_per_step", bytes_per_step),
        ("alloc_reduction", alloc_reduction),
        ("pool_hit_rate", pool_hit_rate),
    ];
    for (name, value) in metrics {
        if !value.is_finite() {
            eprintln!("FAIL: metric {name} is not finite");
            std::process::exit(1);
        }
    }
    if alloc_reduction < MIN_REDUCTION {
        eprintln!(
            "FAIL: steady-state allocation reduction {:.1}% below the {:.0}% floor",
            alloc_reduction * 100.0,
            MIN_REDUCTION * 100.0
        );
        std::process::exit(1);
    }
}
