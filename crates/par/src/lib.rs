//! Deterministic data parallelism on std scoped threads.
//!
//! The workspace's determinism contract (see `tests/determinism.rs` at the
//! repository root) demands that every result — training losses, gradients,
//! adjacency matrices — is **bit-identical across thread counts**. This
//! crate provides the only parallel primitives the workspace is allowed to
//! use, each designed so that floating-point evaluation order never depends
//! on how work is scheduled:
//!
//! * [`par_chunks_mut`] / [`par_chunks`] — chunked maps over a slice. Each
//!   chunk is produced by exactly one task, so as long as the per-chunk
//!   computation is itself deterministic, the result is independent of the
//!   worker count and of which worker claims which chunk.
//! * [`for_each_index`] — an index-space map with the same disjoint-output
//!   guarantee.
//! * [`par_map_reduce`] — a reduction over `0..n` that partitions the index
//!   space into **fixed** ranges (boundaries depend only on `n` and the
//!   requested grain, never on the thread count) and combines the partial
//!   results serially *in range order*. f64 summation order is therefore a
//!   pure function of the input size: one thread and sixteen threads produce
//!   the same bits.
//! * [`scope`] — a thin re-export of [`std::thread::scope`] for ad-hoc
//!   structured fan-out (e.g. building M temporal graphs concurrently).
//!
//! The worker count resolves as: programmatic override via
//! [`set_num_threads`] (used by the `--threads` CLI flag and by tests) →
//! the `ST_NUM_THREADS` environment variable → the machine's available
//! parallelism. At 1 every primitive degrades to a plain serial loop with
//! zero thread overhead.
//!
//! # Examples
//!
//! ```
//! // A deterministic parallel dot product: fixed 4-element partials,
//! // combined in index order regardless of thread count.
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
//! let serial: f64 = {
//!     st_par::set_num_threads(1);
//!     st_par::par_map_reduce(xs.len(), 4, |r| xs[r].iter().sum::<f64>(), 0.0, |a, b| a + b)
//! };
//! let parallel: f64 = {
//!     st_par::set_num_threads(4);
//!     st_par::par_map_reduce(xs.len(), 4, |r| xs[r].iter().sum::<f64>(), 0.0, |a, b| a + b)
//! };
//! assert_eq!(serial.to_bits(), parallel.to_bits());
//! st_par::set_num_threads(0); // back to the environment default
//! ```

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Programmatic worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker count resolved from `ST_NUM_THREADS` / available parallelism,
/// cached on first use (environment changes after that are ignored).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Overrides the worker count for all subsequent parallel calls.
///
/// Passing `0` clears the override, falling back to `ST_NUM_THREADS` (or,
/// absent that, the machine's available parallelism). This is what the
/// `--threads` CLI flag and the trainer's `threads` field call; tests use it
/// to pin both sides of a serial-vs-parallel comparison.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count parallel primitives will use right now.
///
/// Resolution order: [`set_num_threads`] override → `ST_NUM_THREADS`
/// environment variable → [`std::thread::available_parallelism`]. Always at
/// least 1.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("ST_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Parallel regions dispatched to scoped workers.
static PAR_REGIONS: AtomicU64 = AtomicU64::new(0);

/// Regions that took the serial fallback (1 worker or tiny input).
static SERIAL_REGIONS: AtomicU64 = AtomicU64::new(0);

/// Tasks (chunks / indices / ranges) dispatched by parallel regions.
static PAR_TASKS: AtomicU64 = AtomicU64::new(0);

/// Nanoseconds workers spent inside their claim loops.
static PAR_BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Wall nanoseconds of parallel regions, from the calling thread.
static PAR_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Wall nanoseconds × workers: the time budget the regions could have used.
static PAR_CAPACITY_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative scheduling statistics for this crate's primitives.
///
/// All counters are process-global and updated with relaxed atomics; the
/// serial fallback costs exactly one `fetch_add` per region, so the
/// accounting is safe to leave on permanently. Parallel regions also time
/// their workers, giving the utilization figure the serve `/metrics`
/// endpoint exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Regions dispatched to 2+ scoped workers.
    pub par_regions: u64,
    /// Regions that ran on the calling thread (1 worker or tiny input).
    pub serial_regions: u64,
    /// Tasks (chunks / indices / ranges) handed out by parallel regions.
    pub tasks: u64,
    /// Nanoseconds workers spent claiming and running tasks.
    pub busy_ns: u64,
    /// Wall nanoseconds of the parallel regions themselves.
    pub wall_ns: u64,
    /// `wall_ns × workers`: the compute budget those regions spanned.
    pub capacity_ns: u64,
}

impl ParStats {
    /// Fraction of the parallel regions' compute budget spent busy, in
    /// `[0, 1]` (0 when no parallel region has run). Low values mean
    /// workers idled at the claim loop — chunks too coarse or too few.
    pub fn utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.capacity_ns as f64
        }
    }
}

/// Reads the cumulative [`ParStats`] counters.
pub fn stats() -> ParStats {
    ParStats {
        par_regions: PAR_REGIONS.load(Ordering::Relaxed),
        serial_regions: SERIAL_REGIONS.load(Ordering::Relaxed),
        tasks: PAR_TASKS.load(Ordering::Relaxed),
        busy_ns: PAR_BUSY_NS.load(Ordering::Relaxed),
        wall_ns: PAR_WALL_NS.load(Ordering::Relaxed),
        capacity_ns: PAR_CAPACITY_NS.load(Ordering::Relaxed),
    }
}

/// Times a parallel region on the calling thread and charges its wall
/// time and capacity (`wall × workers`) to the global counters.
fn parallel_region<R>(tasks: usize, workers: usize, body: impl FnOnce() -> R) -> R {
    PAR_REGIONS.fetch_add(1, Ordering::Relaxed);
    PAR_TASKS.fetch_add(tasks as u64, Ordering::Relaxed);
    let start = Instant::now();
    let out = body();
    let wall = start.elapsed().as_nanos() as u64;
    PAR_WALL_NS.fetch_add(wall, Ordering::Relaxed);
    PAR_CAPACITY_NS.fetch_add(wall * workers as u64, Ordering::Relaxed);
    out
}

/// Times one worker's claim loop and charges it to the busy counter.
fn busy_worker(body: impl FnOnce()) {
    let start = Instant::now();
    body();
    PAR_BUSY_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Structured fan-out: re-export of [`std::thread::scope`].
///
/// Spawned threads may borrow from the enclosing stack frame and are all
/// joined before `scope` returns. Callers remain responsible for keeping
/// any floating-point combination of the threads' results in a fixed order.
pub use std::thread::scope;

/// A raw pointer that may cross thread boundaries.
///
/// Used to hand each worker the base of a shared output buffer; safety
/// rests on the claiming discipline below, which gives every chunk index to
/// exactly one worker so the derived `&mut` sub-slices are pairwise
/// disjoint.
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Applies `f(chunk_index, chunk)` to consecutive `chunk_len`-sized chunks
/// of `data` (the last chunk may be shorter), claiming chunks dynamically
/// across the resolved worker count.
///
/// Determinism: every output element belongs to exactly one chunk and every
/// chunk is processed by exactly one call of `f`, so the result is
/// bit-identical for any thread count provided `f` itself is deterministic.
///
/// # Panics
///
/// Panics if `chunk_len == 0`. If `f` panics on a worker the panic is
/// propagated after all workers have stopped.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = data.len();
    if total == 0 {
        return;
    }
    let num_chunks = total.div_ceil(chunk_len);
    let workers = num_threads().min(num_chunks);
    let _span = st_obs::span!("par.chunks_mut", num_chunks, workers);
    if workers <= 1 {
        SERIAL_REGIONS.fetch_add(1, Ordering::Relaxed);
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }

    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    parallel_region(num_chunks, workers, || {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    busy_worker(|| {
                        let base = &base;
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= num_chunks {
                                break;
                            }
                            let start = idx * chunk_len;
                            let end = (start + chunk_len).min(total);
                            // SAFETY: the atomic counter hands each chunk
                            // index to exactly one worker, so the [start,
                            // end) ranges carved out here never overlap, and
                            // `data` outlives the scope.
                            let chunk = unsafe {
                                std::slice::from_raw_parts_mut(base.0.add(start), end - start)
                            };
                            f(idx, chunk);
                        }
                    });
                });
            }
        });
    });
}

/// Read-only sibling of [`par_chunks_mut`]: applies `f(chunk_index, chunk)`
/// to consecutive `chunk_len`-sized chunks of `data`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or propagates a worker's panic.
pub fn par_chunks<T, F>(data: &[T], chunk_len: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = data.len();
    if total == 0 {
        return;
    }
    let num_chunks = total.div_ceil(chunk_len);
    let _span = st_obs::span!("par.chunks", num_chunks);
    for_each_index(num_chunks, |idx| {
        let start = idx * chunk_len;
        let end = (start + chunk_len).min(total);
        f(idx, &data[start..end]);
    });
}

/// Runs `f(i)` for every `i in 0..n`, claiming indices dynamically across
/// the resolved worker count.
///
/// `f` must only write through interior mutability it owns per index (or
/// not write at all); with disjoint per-index outputs the result is
/// bit-identical for any thread count.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = num_threads().min(n);
    let _span = st_obs::span!("par.for_each", n, workers);
    if workers <= 1 {
        SERIAL_REGIONS.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    parallel_region(n, workers, || {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    busy_worker(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        f(i);
                    });
                });
            }
        });
    });
}

/// Deterministic ordered reduction over the index space `0..n`.
///
/// The index space is split into `ceil(n / grain)` **fixed** ranges of
/// `grain` indices each — the partition depends only on `n` and `grain`,
/// never on the thread count. `map` evaluates each range to a partial
/// result (in parallel, each range by exactly one worker); `combine` then
/// folds the partials into `init` serially, in ascending range order, on
/// the calling thread.
///
/// Because both the partition and the combination order are fixed, the
/// floating-point evaluation order — and hence every bit of the result —
/// is identical for any worker count.
///
/// # Panics
///
/// Panics if `grain == 0`, or propagates a worker's panic.
///
/// # Examples
///
/// ```
/// let sum = st_par::par_map_reduce(10, 3, |r| r.sum::<usize>(), 0, |a, b| a + b);
/// assert_eq!(sum, 45);
/// ```
pub fn par_map_reduce<R, M, C>(n: usize, grain: usize, map: M, init: R, mut combine: C) -> R
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    C: FnMut(R, R) -> R,
{
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return init;
    }
    let num_ranges = n.div_ceil(grain);
    let range_of = |idx: usize| idx * grain..((idx + 1) * grain).min(n);

    let workers = num_threads().min(num_ranges);
    let _span = st_obs::span!("par.map_reduce", num_ranges, workers);
    let mut partials: Vec<Option<R>> = (0..num_ranges).map(|_| None).collect();
    if workers <= 1 {
        SERIAL_REGIONS.fetch_add(1, Ordering::Relaxed);
        for (idx, slot) in partials.iter_mut().enumerate() {
            *slot = Some(map(range_of(idx)));
        }
    } else {
        let base = SendPtr(partials.as_mut_ptr());
        let next = AtomicUsize::new(0);
        parallel_region(num_ranges, workers, || {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        busy_worker(|| {
                            let base = &base;
                            loop {
                                let idx = next.fetch_add(1, Ordering::Relaxed);
                                if idx >= num_ranges {
                                    break;
                                }
                                // SAFETY: each partial slot is written by the
                                // single worker that claimed its index;
                                // `partials` outlives the scope and is only
                                // read after all joins.
                                unsafe { *base.0.add(idx) = Some(map(range_of(idx))) };
                            }
                        });
                    });
                }
            });
        });
    }

    let mut acc = init;
    for partial in partials {
        acc = combine(acc, partial.expect("every range produced a partial"));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that mutate the global override serialise on this lock and
    /// restore the default before releasing it.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_forced_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(n);
        let out = f();
        set_num_threads(0);
        out
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn override_wins_and_clears() {
        with_forced_threads(3, || assert_eq!(num_threads(), 3));
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for threads in [1, 4] {
            with_forced_threads(threads, || {
                let mut data = vec![0u32; 103];
                par_chunks_mut(&mut data, 10, |idx, chunk| {
                    for x in chunk.iter_mut() {
                        *x += 1 + idx as u32;
                    }
                });
                for (i, &x) in data.iter().enumerate() {
                    assert_eq!(x, 1 + (i / 10) as u32, "element {i}");
                }
            });
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_and_short_input() {
        let mut empty: Vec<f64> = Vec::new();
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![1.0];
        par_chunks_mut(&mut one, 8, |idx, chunk| {
            assert_eq!(idx, 0);
            chunk[0] = 2.0;
        });
        assert_eq!(one, vec![2.0]);
    }

    #[test]
    fn par_chunks_reads_all_chunks() {
        let data: Vec<usize> = (0..57).collect();
        let seen = Mutex::new(vec![false; 8]);
        with_forced_threads(4, || {
            par_chunks(&data, 8, |idx, chunk| {
                assert_eq!(chunk[0], idx * 8);
                seen.lock().unwrap()[idx] = true;
            });
        });
        assert!(seen.lock().unwrap().iter().all(|&s| s));
    }

    #[test]
    fn for_each_index_covers_the_range() {
        for threads in [1, 4] {
            with_forced_threads(threads, || {
                let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
                for_each_index(100, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
                }
            });
        }
    }

    #[test]
    fn map_reduce_is_bitwise_thread_invariant() {
        // Summands chosen so that a different association order would
        // actually change the result bits.
        let xs: Vec<f64> = (0..1234)
            .map(|i| (i as f64 * 0.7131).sin() * 10f64.powi((i % 13) as i32 - 6))
            .collect();
        let run = |threads| {
            with_forced_threads(threads, || {
                par_map_reduce(
                    xs.len(),
                    7,
                    |r| xs[r].iter().sum::<f64>(),
                    0.0,
                    |a, b| a + b,
                )
            })
        };
        let serial = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                serial.to_bits(),
                run(threads).to_bits(),
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn map_reduce_differs_from_naive_order_for_adversarial_grain() {
        // Sanity check on the test above: with a *different* grain the
        // association order changes and so (generically) do the bits.
        let xs: Vec<f64> = (0..1234)
            .map(|i| (i as f64 * 0.7131).sin() * 10f64.powi((i % 13) as i32 - 6))
            .collect();
        let sum_with_grain = |g| {
            par_map_reduce(
                xs.len(),
                g,
                |r| xs[r].iter().sum::<f64>(),
                0.0,
                |a, b| a + b,
            )
        };
        assert_ne!(sum_with_grain(7).to_bits(), sum_with_grain(1000).to_bits());
    }

    #[test]
    fn map_reduce_empty_returns_init() {
        let out = par_map_reduce(0, 4, |_| unreachable!(), 42.0, |a, b: f64| a + b);
        assert_eq!(out, 42.0);
    }

    #[test]
    fn map_reduce_collects_in_index_order() {
        let order: Vec<usize> = with_forced_threads(4, || {
            par_map_reduce(
                20,
                3,
                |r| vec![r.start],
                Vec::new(),
                |mut acc: Vec<usize>, p| {
                    acc.extend(p);
                    acc
                },
            )
        });
        assert_eq!(order, vec![0, 3, 6, 9, 12, 15, 18]);
    }

    #[test]
    fn scope_reexport_joins_threads() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn stats_count_serial_and_parallel_regions() {
        let before = stats();
        with_forced_threads(1, || for_each_index(8, |_| {}));
        let mid = stats();
        assert!(mid.serial_regions > before.serial_regions);
        with_forced_threads(4, || for_each_index(64, |_| {}));
        let after = stats();
        assert!(after.par_regions > mid.par_regions);
        assert!(after.tasks >= mid.tasks + 64);
        assert!(after.wall_ns >= mid.wall_ns);
        // Other tests may bump the global counters concurrently, so only
        // sanity-check the derived ratio.
        let u = after.utilization();
        assert!(u.is_finite() && u >= 0.0, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        let mut data = vec![0.0];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }
}
