//! Streaming deployment: feed observations to a trained model one timestamp
//! at a time and read out rolling forecasts plus the imputed recent
//! history — the paper's "transportation application system" mode.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_forecast
//! ```

use rihgcn::core::{fit, prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel, TrainConfig};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::rng;

fn main() {
    // Train a small model offline.
    let ds = generate_pems(&PemsConfig {
        num_nodes: 6,
        num_days: 6,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(21));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(12, 12, 6);
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    let tc = TrainConfig {
        max_epochs: 8,
        patience: 3,
        ..Default::default()
    };
    fit(
        &mut model,
        &sampler.sample(&norm.train),
        &sampler.sample(&norm.val),
        &tc,
    );
    println!("model trained; switching to streaming mode\n");

    // Go online: replay the test period as a live feed.
    let mut online = OnlineForecaster::new(model, z);
    let test_start = (ds.num_times() as f64 * 0.9) as usize;
    for step in 0..24 {
        let t = test_start + step;
        online.push(
            ds.values.time_slice(t),
            ds.mask.time_slice(t),
            ds.slot_of(t),
        );
        match online.forecast() {
            None => println!("t+{step:>2}: buffering ({}/12 observations)", online.len()),
            Some(preds) => {
                // Report node 0's average-speed forecast for +5 and +60 min.
                let in5 = preds[0][(0, 0)];
                let in60 = preds[11][(0, 0)];
                let now = ds.values[(0, 0, t)];
                println!(
                    "t+{step:>2}: node 0 now {now:5.1} mph → +5 min {in5:5.1}, +60 min {in60:5.1}"
                );
            }
        }
    }

    // The imputed window fills the gaps the sensors dropped.
    let window = online.imputed_window().expect("window is full");
    let hidden: usize = (0..12)
        .map(|i| {
            let t = test_start + 12 + i;
            ds.mask
                .time_slice(t)
                .as_slice()
                .iter()
                .filter(|&&m| m == 0.0)
                .count()
        })
        .sum();
    println!(
        "\nimputed window covers {} matrices; {hidden} hidden entries were filled in",
        window.len()
    );
}
