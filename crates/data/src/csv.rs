//! CSV import/export for traffic datasets.
//!
//! A deliberately simple long format so users can plug in real sensor
//! extracts (e.g. true PeMS exports) without extra dependencies:
//!
//! ```text
//! node,feature,time,value,observed
//! 0,0,0,64.25,1
//! 0,0,1,,0
//! ```
//!
//! Hidden entries may leave `value` empty (it is stored as 0) or carry a
//! ground-truth value (synthetic data keeps it so imputation can be scored).

use crate::TrafficDataset;
use st_graph::RoadNetwork;
use st_tensor::Tensor3;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error returned when CSV parsing fails.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The rows do not form a dense `N × D × T` cube.
    Incomplete(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Incomplete(msg) => write!(f, "incomplete data cube: {msg}"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset in the long CSV format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<W: Write>(ds: &TrafficDataset, mut w: W) -> Result<(), CsvError> {
    writeln!(w, "node,feature,time,value,observed")?;
    let (n, d, t_len) = ds.values.shape();
    for node in 0..n {
        for f in 0..d {
            for t in 0..t_len {
                let observed = ds.mask[(node, f, t)] != 0.0;
                writeln!(
                    w,
                    "{node},{f},{t},{},{}",
                    ds.values[(node, f, t)],
                    u8::from(observed)
                )?;
            }
        }
    }
    Ok(())
}

/// Reads a dataset from the long CSV format.
///
/// The node count must match `network.len()`; the cube must be dense (every
/// `(node, feature, time)` triple present exactly once).
///
/// # Errors
///
/// Returns [`CsvError::Parse`] for malformed rows and
/// [`CsvError::Incomplete`] when the rows do not form a dense cube or do
/// not match the network.
pub fn read_csv<R: BufRead>(
    r: R,
    name: &str,
    network: RoadNetwork,
    interval_minutes: usize,
) -> Result<TrafficDataset, CsvError> {
    let mut rows: Vec<(usize, usize, usize, f64, bool)> = Vec::new();
    let mut max_node = 0usize;
    let mut max_feature = 0usize;
    let mut max_time = 0usize;

    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || (lineno == 1 && trimmed.starts_with("node")) {
            continue;
        }
        let parts: Vec<&str> = trimmed.split(',').collect();
        if parts.len() != 5 {
            return Err(CsvError::Parse {
                line: lineno,
                message: format!("expected 5 fields, found {}", parts.len()),
            });
        }
        let parse_idx = |s: &str, what: &str| {
            s.trim().parse::<usize>().map_err(|e| CsvError::Parse {
                line: lineno,
                message: format!("bad {what}: {e}"),
            })
        };
        let node = parse_idx(parts[0], "node")?;
        let feature = parse_idx(parts[1], "feature")?;
        let time = parse_idx(parts[2], "time")?;
        let value = if parts[3].trim().is_empty() {
            0.0
        } else {
            parts[3]
                .trim()
                .parse::<f64>()
                .map_err(|e| CsvError::Parse {
                    line: lineno,
                    message: format!("bad value: {e}"),
                })?
        };
        let observed = match parts[4].trim() {
            "0" => false,
            "1" => true,
            other => {
                return Err(CsvError::Parse {
                    line: lineno,
                    message: format!("observed must be 0 or 1, found {other:?}"),
                })
            }
        };
        max_node = max_node.max(node);
        max_feature = max_feature.max(feature);
        max_time = max_time.max(time);
        rows.push((node, feature, time, value, observed));
    }

    if rows.is_empty() {
        return Err(CsvError::Incomplete("no data rows".into()));
    }
    let (n, d, t_len) = (max_node + 1, max_feature + 1, max_time + 1);
    if n != network.len() {
        return Err(CsvError::Incomplete(format!(
            "csv has {n} nodes but the network has {}",
            network.len()
        )));
    }
    if rows.len() != n * d * t_len {
        return Err(CsvError::Incomplete(format!(
            "expected {} rows for a dense {n}x{d}x{t_len} cube, found {}",
            n * d * t_len,
            rows.len()
        )));
    }

    let mut values = Tensor3::zeros(n, d, t_len);
    let mut mask = Tensor3::zeros(n, d, t_len);
    let mut seen = vec![false; n * d * t_len];
    for (node, f, t, value, observed) in rows {
        let idx = (node * d + f) * t_len + t;
        if seen[idx] {
            return Err(CsvError::Incomplete(format!(
                "duplicate entry for node {node}, feature {f}, time {t}"
            )));
        }
        seen[idx] = true;
        values[(node, f, t)] = value;
        mask[(node, f, t)] = f64::from(u8::from(observed));
    }
    Ok(TrafficDataset::new(
        name,
        values,
        mask,
        network,
        interval_minutes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_pems, PemsConfig};

    #[test]
    fn round_trip_preserves_dataset() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 3,
            num_days: 1,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut st_tensor::rng(1));
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), "pems-synth", ds.network.clone(), 5).unwrap();
        assert_eq!(back.values, ds.values);
        assert_eq!(back.mask, ds.mask);
        assert_eq!(back.name, ds.name);
    }

    #[test]
    fn header_and_blank_lines_skipped() {
        let csv = "node,feature,time,value,observed\n0,0,0,1.5,1\n\n0,0,1,,0\n";
        let ds = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap();
        assert_eq!(ds.values[(0, 0, 0)], 1.5);
        assert_eq!(ds.mask[(0, 0, 1)], 0.0);
        assert_eq!(ds.values[(0, 0, 1)], 0.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        let csv = "0,0,0,1.5\n";
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
        let csv = "0,0,zero,1.5,1\n";
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Parse { .. }), "{err}");
        let csv = "0,0,0,1.5,yes\n";
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_sparse_cube() {
        let csv = "0,0,0,1.0,1\n0,0,2,2.0,1\n"; // time 1 missing
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Incomplete(_)), "{err}");
    }

    #[test]
    fn rejects_duplicates() {
        let csv = "0,0,0,1.0,1\n0,0,0,2.0,1\n";
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Incomplete(_)), "{err}");
    }

    #[test]
    fn rejects_network_mismatch() {
        let csv = "0,0,0,1.0,1\n1,0,0,2.0,1\n";
        let err = read_csv(csv.as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Incomplete(_)), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_csv("".as_bytes(), "t", RoadNetwork::corridor(1, 1.0), 5).unwrap_err();
        assert!(matches!(err, CsvError::Incomplete(_)), "{err}");
    }
}
