//! Streaming inference: forecasts as observations arrive.
//!
//! The paper's closing note — "the proposed method will be built into a
//! transportation application system to provide future traffic conditions
//! to users" — implies an online deployment mode. [`OnlineForecaster`]
//! wraps a trained [`RihgcnModel`] with a rolling observation window: push
//! each new (partial) measurement matrix as it arrives and ask for a
//! forecast or the imputed recent history at any time, all in original
//! data units.

use crate::{BatchedWindow, RihgcnModel};
use st_data::{WindowSample, ZScore};
use st_tensor::Matrix;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error returned by [`OnlineForecaster::try_push`] when an observation is
/// rejected before it can poison the rolling window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The values matrix is not `nodes × features`.
    ValuesShape {
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape that was pushed.
        got: (usize, usize),
    },
    /// The mask matrix does not match the values matrix.
    MaskShape {
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape that was pushed.
        got: (usize, usize),
    },
    /// A mask entry is neither 0 nor 1.
    MaskNotBinary {
        /// Offending row (node).
        row: usize,
        /// Offending column (feature).
        col: usize,
    },
    /// An observed entry (mask = 1) is NaN or infinite.
    NonFiniteValue {
        /// Offending row (node).
        row: usize,
        /// Offending column (feature).
        col: usize,
    },
    /// The time-of-day slot is out of range for the model's day length.
    SlotOutOfRange {
        /// Slot that was pushed.
        slot: usize,
        /// Number of slots in a day.
        slots_per_day: usize,
    },
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PushError::ValuesShape { expected, got } => write!(
                f,
                "observation shape must be nodes × features = {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            PushError::MaskShape { expected, got } => write!(
                f,
                "mask shape must match values = {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            PushError::MaskNotBinary { row, col } => {
                write!(f, "mask entry ({row}, {col}) must be 0 or 1")
            }
            PushError::NonFiniteValue { row, col } => {
                write!(f, "observed value at ({row}, {col}) is not finite")
            }
            PushError::SlotOutOfRange {
                slot,
                slots_per_day,
            } => write!(
                f,
                "slot {slot} out of range: the model's day has {slots_per_day} slots"
            ),
        }
    }
}

impl Error for PushError {}

/// A rolling-window online wrapper around a trained model.
///
/// # Examples
///
/// ```no_run
/// use rihgcn_core::{prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel};
/// use st_data::{generate_pems, PemsConfig};
/// use st_tensor::Matrix;
///
/// let ds = generate_pems(&PemsConfig::default());
/// let (norm, z) = prepare_split(&ds.split_chronological());
/// let model = RihgcnModel::from_dataset(&norm.train, RihgcnConfig::default());
/// let mut online = OnlineForecaster::new(model, z);
/// // Feed measurements as they arrive (slot = time-of-day index).
/// online.push(Matrix::zeros(20, 4), Matrix::zeros(20, 4), 100);
/// ```
#[derive(Debug)]
pub struct OnlineForecaster {
    model: RihgcnModel,
    z: ZScore,
    // (raw values, mask, slot) per buffered timestamp. Entries are
    // `Arc`-shared so a `WindowSnapshot` — the frozen view a deferred
    // batch member forecasts from — clones `history` pointers, not
    // `history` matrices.
    window: VecDeque<Arc<(Matrix, Matrix, usize)>>,
    history: usize,
    horizon: usize,
    version: u64,
}

/// An immutable snapshot of a full observation window at one version.
///
/// Taken with [`OnlineForecaster::snapshot`] and consumed by
/// [`OnlineForecaster::forecast_batch`]: an engine shard snapshots the
/// window when it defers a forecast into a forming batch, so observations
/// that land while the batch accumulates cannot change what the deferred
/// request sees. Snapshots share the underlying matrices with the live
/// window via `Arc` (taking one is O(history) pointer clones).
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    entries: Vec<Arc<(Matrix, Matrix, usize)>>,
    version: u64,
}

impl WindowSnapshot {
    /// The window version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl OnlineForecaster {
    /// Wraps a trained model and its normalisation transform.
    pub fn new(model: RihgcnModel, z: ZScore) -> Self {
        let history = model.config().history;
        let horizon = model.config().horizon;
        Self {
            model,
            z,
            window: VecDeque::with_capacity(history),
            history,
            horizon,
            version: 0,
        }
    }

    /// Builds a forecaster straight from a checkpoint-v2 stream: the
    /// self-contained persist format carries the model, its graphs and the
    /// ZScore transform, which is everything serving needs.
    ///
    /// # Errors
    ///
    /// Propagates any [`crate::PersistError`] from the checkpoint reader.
    pub fn from_checkpoint<R: std::io::BufRead>(r: &mut R) -> Result<Self, crate::PersistError> {
        let (model, z) = crate::load_checkpoint(r)?;
        Ok(Self::new(model, z))
    }

    /// Number of observations currently buffered (at most `history`).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no observations are buffered yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether a full history window is available for forecasting.
    pub fn ready(&self) -> bool {
        self.window.len() == self.history
    }

    /// Read-only access to the wrapped model.
    pub fn model(&self) -> &RihgcnModel {
        &self.model
    }

    /// The normalisation transform the forecaster converts units with.
    pub fn zscore(&self) -> &ZScore {
        &self.z
    }

    /// History window length `T` the model consumes.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Forecast horizon `T'` the model produces.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Monotonic window version: bumped by every successful
    /// [`OnlineForecaster::push`]/[`try_push`](OnlineForecaster::try_push)
    /// and by [`OnlineForecaster::reset`]. Two calls with the same version
    /// observe the same window, so forecasts can be cached per version.
    pub fn window_version(&self) -> u64 {
        self.version
    }

    /// Pushes one timestamp of measurements in **original units**.
    ///
    /// `values` holds the observed readings (entries with `mask == 0` are
    /// ignored), `slot` is the time-of-day index of this timestamp. The
    /// oldest timestamp falls out once the window is full.
    ///
    /// # Panics
    ///
    /// Panics with the [`PushError`] message if the observation is invalid;
    /// see [`OnlineForecaster::try_push`] for the non-panicking variant.
    pub fn push(&mut self, values: Matrix, mask: Matrix, slot: usize) {
        if let Err(e) = self.try_push(values, mask, slot) {
            panic!("{e}");
        }
    }

    /// Validates and pushes one timestamp of measurements in **original
    /// units**, rejecting malformed observations instead of failing deep
    /// inside the model's `forward`.
    ///
    /// Checks, in order: values shape against the model's `(N, F)`, mask
    /// shape against values, mask entries binary, observed values finite,
    /// and `slot < slots_per_day`. Entries with `mask == 0` are stored as
    /// zero so junk (even NaN) at hidden positions cannot leak into later
    /// arithmetic.
    ///
    /// # Errors
    ///
    /// Returns the first [`PushError`] encountered; the window is left
    /// untouched on error.
    pub fn try_push(&mut self, values: Matrix, mask: Matrix, slot: usize) -> Result<(), PushError> {
        let expected = (self.model.num_nodes(), self.model.num_features());
        if values.shape() != expected {
            return Err(PushError::ValuesShape {
                expected,
                got: values.shape(),
            });
        }
        if mask.shape() != values.shape() {
            return Err(PushError::MaskShape {
                expected,
                got: mask.shape(),
            });
        }
        for row in 0..expected.0 {
            for col in 0..expected.1 {
                let m = mask[(row, col)];
                if m != 0.0 && m != 1.0 {
                    return Err(PushError::MaskNotBinary { row, col });
                }
                if m == 1.0 && !values[(row, col)].is_finite() {
                    return Err(PushError::NonFiniteValue { row, col });
                }
            }
        }
        let slots_per_day = self.model.slots_per_day();
        if slot >= slots_per_day {
            return Err(PushError::SlotOutOfRange {
                slot,
                slots_per_day,
            });
        }
        // Canonicalise: hidden entries are stored as 0 regardless of what
        // the caller put there.
        let clean = values.zip_map(&mask, |v, m| if m == 0.0 { 0.0 } else { v });
        if self.window.len() == self.history {
            self.window.pop_front();
        }
        self.window.push_back(Arc::new((clean, mask, slot)));
        self.version += 1;
        Ok(())
    }

    /// Clears the buffered window.
    pub fn reset(&mut self) {
        self.window.clear();
        self.version += 1;
    }

    /// Freezes the current (full) window for a deferred batched forecast;
    /// `None` until [`OnlineForecaster::ready`].
    pub fn snapshot(&self) -> Option<WindowSnapshot> {
        if !self.ready() {
            return None;
        }
        Some(WindowSnapshot {
            entries: self.window.iter().cloned().collect(),
            version: self.version,
        })
    }

    /// Normalises one frozen entry list into a model sample — the same
    /// transform for the live window and for snapshots, so a snapshot taken
    /// at version `v` forecasts bit-identically to a live call at `v`.
    fn sample_from_entries(&self, entries: &[Arc<(Matrix, Matrix, usize)>]) -> WindowSample {
        let n = self.model.num_nodes();
        let d = self.model.num_features();
        let mut inputs = Vec::with_capacity(entries.len());
        let mut masks = Vec::with_capacity(entries.len());
        let mut truths = Vec::with_capacity(entries.len());
        let mut slots = Vec::with_capacity(entries.len());
        for entry in entries {
            let (raw, mask, slot) = &**entry;
            let norm = self.z.apply_matrix(raw);
            inputs.push(norm.hadamard(mask));
            truths.push(norm);
            masks.push(mask.clone());
            slots.push(*slot);
        }
        // Inference-only: zero targets under an all-zero mask contribute
        // nothing to the (unused) loss terms.
        let targets = vec![Matrix::zeros(n, d); self.horizon];
        let target_masks = vec![Matrix::zeros(n, d); self.horizon];
        WindowSample {
            inputs,
            masks,
            truths,
            targets,
            target_masks,
            slots,
            start: 0,
        }
    }

    fn build_sample(&self) -> WindowSample {
        let entries: Vec<Arc<(Matrix, Matrix, usize)>> = self.window.iter().cloned().collect();
        self.sample_from_entries(&entries)
    }

    /// Buffer-pool statistics of the recycled inference/training tape, if
    /// the model has run at least once (`None` before that).
    pub fn pool_stats(&self) -> Option<st_tensor::PoolStats> {
        self.model.training_pool_stats()
    }

    /// Bytes parked in the recycled tape pool's free lists (`None` before
    /// the model has run).
    pub fn pool_free_bytes(&self) -> Option<usize> {
        self.model.training_pool_free_bytes()
    }

    /// The `T'`-step forecast in original units, or `None` until a full
    /// window has been pushed.
    ///
    /// Runs through the recycled session (steady-state inference is
    /// allocation-free on the tape side) and denormalises the predictions
    /// straight off the live tape — no intermediate `Vec<Matrix>` clone of
    /// the normalised outputs.
    pub fn forecast(&mut self) -> Option<Vec<Matrix>> {
        if !self.ready() {
            return None;
        }
        let sample = self.build_sample();
        let z = &self.z;
        Some(self.model.with_recycled_run(&sample, |sess, run| {
            run.predictions
                .iter()
                .map(|&v| z.invert_matrix(sess.tape.value(v)))
                .collect()
        }))
    }

    /// Forecasts `B` frozen windows in one batched tape run, returning each
    /// snapshot's `T'`-step forecast in original units, in input order.
    ///
    /// Entry `b` is bit-identical to what [`OnlineForecaster::forecast`]
    /// returned (or would have returned) at snapshot `b`'s version: the
    /// normalisation is byte-for-byte the live path's, and the batched
    /// forward is bit-identical per block to the single-window forward.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` is empty.
    pub fn forecast_batch(&mut self, snapshots: &[WindowSnapshot]) -> Vec<Vec<Matrix>> {
        assert!(!snapshots.is_empty(), "forecast_batch needs ≥ 1 snapshot");
        let n = self.model.num_nodes();
        let d = self.model.num_features();
        let b = snapshots.len();
        let t_len = self.history;
        let mean = self.z.mean();
        let std = self.z.std();
        // Normalise straight into the stacked step blocks: two `(B·N) × D`
        // allocations per step instead of `3B` per-window intermediates
        // plus a stacking copy. The elementwise chain is the live path's
        // `apply_matrix` → `hadamard` verbatim, so the bits match.
        let mut inputs = Vec::with_capacity(t_len);
        let mut masks = Vec::with_capacity(t_len);
        let mut slots = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut input = Matrix::zeros(b * n, d);
            let mut mask_s = Matrix::zeros(b * n, d);
            let mut step_slots = Vec::with_capacity(b);
            for (w, snap) in snapshots.iter().enumerate() {
                assert_eq!(snap.entries.len(), t_len, "snapshot history mismatch");
                let (raw, mask, slot) = &*snap.entries[t];
                for i in 0..n {
                    for j in 0..d {
                        let norm = (raw[(i, j)] - mean[j]) / std[j];
                        input[(w * n + i, j)] = norm * mask[(i, j)];
                        mask_s[(w * n + i, j)] = mask[(i, j)];
                    }
                }
                step_slots.push(*slot);
            }
            inputs.push(input);
            masks.push(mask_s);
            slots.push(step_slots);
        }
        let batch = BatchedWindow::from_parts(inputs, masks, slots, b);
        let z = &self.z;
        // Denormalise block `b` of each stacked prediction in place off the
        // live tape — the same `v·σ + μ` per element as `invert_matrix` on
        // a row slice, minus the slice — and never touch the (unused)
        // imputation estimates.
        self.model.with_batched_recycled_run(&batch, |sess, run| {
            (0..b)
                .map(|w| {
                    run.predictions
                        .iter()
                        .map(|&v| {
                            let stacked = sess.tape.value(v);
                            Matrix::from_fn(n, d, |i, j| {
                                stacked[(w * n + i, j)] * z.std()[j] + z.mean()[j]
                            })
                        })
                        .collect()
                })
                .collect()
        })
    }

    /// The imputed history window in original units (model estimates at
    /// hidden entries, observations elsewhere), or `None` until ready.
    pub fn imputed_window(&mut self) -> Option<Vec<Matrix>> {
        if !self.ready() {
            return None;
        }
        let sample = self.build_sample();
        let z = &self.z;
        let window = &self.window;
        Some(self.model.with_recycled_run(&sample, |sess, run| {
            run.estimates
                .iter()
                .zip(window.iter())
                .map(|(&est, entry)| {
                    let (raw, mask, _) = &**entry;
                    // Complement in raw units: keep observations, fill holes
                    // with the (denormalised) model estimate.
                    let est_raw = z.invert_matrix(sess.tape.value(est));
                    let holes = est_raw.zip_map(mask, |e, m| e * (1.0 - m));
                    let observed = raw.hadamard(mask);
                    &holes + &observed
                })
                .collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare_split, RihgcnConfig};
    use st_data::{generate_pems, PemsConfig};
    use st_tensor::rng;

    fn setup() -> (OnlineForecaster, st_data::TrafficDataset) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(3));
        let (norm, z) = prepare_split(&ds.split_chronological());
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        (OnlineForecaster::new(model, z), ds)
    }

    #[test]
    fn not_ready_until_window_full() {
        let (mut online, ds) = setup();
        assert!(online.is_empty());
        for t in 0..3 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
            assert!(!online.ready());
            assert!(online.forecast().is_none());
        }
        online.push(ds.values.time_slice(3), ds.mask.time_slice(3), 3);
        assert!(online.ready());
        assert!(online.forecast().is_some());
    }

    #[test]
    fn forecast_shapes_and_units() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let preds = online.forecast().unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        // Raw units: an untrained model's output after denormalisation is
        // still anchored near the data mean (tens of mph), not near 0.
        assert!(preds[0].mean() > 10.0, "mean was {}", preds[0].mean());
    }

    #[test]
    fn window_rolls_forward() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let before = online.forecast().unwrap();
        online.push(ds.values.time_slice(4), ds.mask.time_slice(4), 4);
        assert_eq!(online.len(), 4); // still capped at history
        let after = online.forecast().unwrap();
        assert_ne!(before, after, "new observation must change the forecast");
    }

    #[test]
    fn imputed_window_preserves_observations() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let imputed = online.imputed_window().unwrap();
        assert_eq!(imputed.len(), 4);
        for (t, win) in imputed.iter().enumerate() {
            for r in 0..4 {
                for c in 0..4 {
                    if ds.mask[(r, c, t)] != 0.0 {
                        assert!(
                            (win[(r, c)] - ds.values[(r, c, t)]).abs() < 1e-9,
                            "observed entries must pass through"
                        );
                    } else {
                        assert!(win[(r, c)].is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn try_push_rejects_bad_observations() {
        let (mut online, ds) = setup();
        let good_v = ds.values.time_slice(0);
        let good_m = ds.mask.time_slice(0);

        let err = online
            .try_push(Matrix::zeros(3, 4), Matrix::zeros(3, 4), 0)
            .unwrap_err();
        assert!(matches!(err, PushError::ValuesShape { .. }), "{err}");
        assert!(err.to_string().contains("4x4"), "{err}");

        let err = online
            .try_push(good_v.clone(), Matrix::zeros(4, 3), 0)
            .unwrap_err();
        assert!(matches!(err, PushError::MaskShape { .. }), "{err}");

        let mut bad_mask = good_m.clone();
        bad_mask[(1, 2)] = 0.5;
        let err = online.try_push(good_v.clone(), bad_mask, 0).unwrap_err();
        assert_eq!(err, PushError::MaskNotBinary { row: 1, col: 2 });

        let mut bad_vals = good_v.clone();
        bad_vals[(2, 1)] = f64::NAN;
        let mut mask = Matrix::zeros(4, 4);
        mask[(2, 1)] = 1.0;
        let err = online.try_push(bad_vals, mask, 0).unwrap_err();
        assert_eq!(err, PushError::NonFiniteValue { row: 2, col: 1 });

        let err = online
            .try_push(good_v.clone(), good_m.clone(), 100_000)
            .unwrap_err();
        assert!(matches!(err, PushError::SlotOutOfRange { .. }), "{err}");

        // Nothing was buffered by any of the rejected pushes.
        assert!(online.is_empty());
        assert_eq!(online.window_version(), 0);
        online.try_push(good_v, good_m, 0).unwrap();
        assert_eq!(online.len(), 1);
        assert_eq!(online.window_version(), 1);
    }

    #[test]
    fn nan_at_hidden_entries_is_harmless() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            let mut vals = ds.values.time_slice(t);
            let mask = ds.mask.time_slice(t);
            for r in 0..4 {
                for c in 0..4 {
                    if mask[(r, c)] == 0.0 {
                        vals[(r, c)] = f64::NAN;
                    }
                }
            }
            online.try_push(vals, mask, t).unwrap();
        }
        let preds = online.forecast().unwrap();
        assert!(preds.iter().all(Matrix::is_finite));
    }

    #[test]
    fn window_version_tracks_pushes_and_reset() {
        let (mut online, ds) = setup();
        assert_eq!(online.window_version(), 0);
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        assert_eq!(online.window_version(), 4);
        online.reset();
        assert_eq!(online.window_version(), 5);
    }

    #[test]
    #[should_panic(expected = "nodes × features")]
    fn push_panics_with_clear_message() {
        let (mut online, _ds) = setup();
        online.push(Matrix::zeros(2, 2), Matrix::zeros(2, 2), 0);
    }

    #[test]
    fn reset_clears_state() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        online.reset();
        assert!(online.is_empty());
        assert!(online.forecast().is_none());
    }
}
