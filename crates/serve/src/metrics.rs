//! Lock-free service counters rendered in a Prometheus-style text format.
//!
//! Every family carries its `# HELP` / `# TYPE` header and histograms come
//! with the `_sum`/`_count` lines rate/avg queries need. Beyond the
//! HTTP-side counters, [`Metrics::render`] also exports the engine's queue
//! depth and tape-run counters, the inference tape's [`MatrixPool`]
//! (st_tensor::MatrixPool) statistics (published by the engine thread via
//! [`Metrics::set_pool_stats`]) and the process-wide [`st_par::stats`]
//! scheduling counters — one scrape shows the whole pipeline.

use std::sync::atomic::{AtomicU64, Ordering};

/// Routes the service distinguishes in its metrics.
///
/// The discriminant doubles as the index into [`ROUTES`] (asserted at
/// compile time), so per-request recording is O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /observe`
    Observe,
    /// `GET /forecast`
    Forecast,
    /// `GET /imputed`
    Imputed,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /debug/trace`
    Trace,
    /// `POST /admin/shutdown`
    Shutdown,
    /// `POST /admin/load`
    AdminLoad,
    /// `POST /admin/unload`
    AdminUnload,
    /// `GET /admin/tenants`
    AdminTenants,
    /// Anything else (404/405 traffic).
    Other,
}

const ROUTES: [(Route, &str); 11] = [
    (Route::Observe, "observe"),
    (Route::Forecast, "forecast"),
    (Route::Imputed, "imputed"),
    (Route::Healthz, "healthz"),
    (Route::Metrics, "metrics"),
    (Route::Trace, "trace"),
    (Route::Shutdown, "shutdown"),
    (Route::AdminLoad, "admin_load"),
    (Route::AdminUnload, "admin_unload"),
    (Route::AdminTenants, "admin_tenants"),
    (Route::Other, "other"),
];

// `route_index` relies on ROUTES being listed in discriminant order.
const _: () = {
    let mut i = 0;
    while i < ROUTES.len() {
        assert!(
            ROUTES[i].0 as usize == i,
            "ROUTES must be listed in Route discriminant order"
        );
        i += 1;
    }
};

#[inline]
fn route_index(route: Route) -> usize {
    route as usize
}

/// Upper bounds (inclusive, in microseconds) of the latency histogram
/// buckets; the last bucket is unbounded.
const BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];
const BUCKET_LABELS: [&str; 6] = ["100us", "1ms", "10ms", "100ms", "1s", "+inf"];

/// Upper bounds (inclusive) of the batched-forecast size histogram; the
/// last bucket is unbounded so `--max-batch` above 16 still lands somewhere.
const BATCH_BUCKET_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, u64::MAX];
const BATCH_BUCKET_LABELS: [&str; 6] = ["1", "2", "4", "8", "16", "+inf"];

/// Atomic counters for the service: per-route request counts and latency
/// sums, error count, engine cache hits and queue depth, tape runs,
/// rejected connections, a request-latency histogram, per-shard engine
/// counters, and gauges mirroring the inference tape's buffer pool. All
/// methods are callable from any worker thread.
#[derive(Debug)]
pub struct Metrics {
    requests: [AtomicU64; ROUTES.len()],
    latency_us: [AtomicU64; ROUTES.len()],
    errors: AtomicU64,
    cache_hits: AtomicU64,
    rejected_connections: AtomicU64,
    latency: [AtomicU64; BUCKET_BOUNDS_US.len()],
    queue_depth: AtomicU64,
    engine_requests: AtomicU64,
    tape_runs: AtomicU64,
    shard_requests: Vec<AtomicU64>,
    shard_queue_depth: Vec<AtomicU64>,
    shard_tape_runs: Vec<AtomicU64>,
    batch_size: [AtomicU64; BATCH_BUCKET_BOUNDS.len()],
    batch_size_sum: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    pool_released: AtomicU64,
    pool_free_bytes: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl Metrics {
    /// Fresh zeroed counters for a single-shard service.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Fresh zeroed counters with per-shard families for `shards` engine
    /// shards (min 1). The aggregate engine counters are always maintained
    /// alongside, so `sum(shard_requests) == engine_requests` holds at any
    /// quiescent point.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        let zeroed = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        Self {
            requests: Default::default(),
            latency_us: Default::default(),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            latency: Default::default(),
            queue_depth: AtomicU64::new(0),
            engine_requests: AtomicU64::new(0),
            tape_runs: AtomicU64::new(0),
            shard_requests: zeroed(shards),
            shard_queue_depth: zeroed(shards),
            shard_tape_runs: zeroed(shards),
            batch_size: Default::default(),
            batch_size_sum: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            pool_released: AtomicU64::new(0),
            pool_free_bytes: AtomicU64::new(0),
        }
    }

    /// Number of engine shards these metrics cover.
    pub fn num_shards(&self) -> usize {
        self.shard_requests.len()
    }

    /// Records one served request: its route, wall latency, and whether the
    /// response was an error (status ≥ 400).
    pub fn record(&self, route: Route, latency_us: u64, error: bool) {
        let i = route_index(route);
        self.requests[i].fetch_add(1, Ordering::Relaxed);
        self.latency_us[i].fetch_add(latency_us, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| latency_us <= b)
            .expect("last bound is u64::MAX");
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a forecast served from a shard's window-version cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection rejected by the max-connections limit.
    pub fn reject_connection(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered a shard's queue.
    pub fn queue_enter(&self, shard: usize) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.shard_queue_depth[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// A shard dequeued a request.
    pub fn queue_exit(&self, shard: usize) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shard_queue_depth[shard].fetch_sub(1, Ordering::Relaxed);
        self.engine_requests.fetch_add(1, Ordering::Relaxed);
        self.shard_requests[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// A request left a shard's queue without reaching it (the shard
    /// thread is gone and the send failed).
    pub fn queue_drop(&self, shard: usize) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.shard_queue_depth[shard].fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently queued for (or being handled by) any shard.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Requests one shard has dequeued.
    pub fn shard_requests(&self, shard: usize) -> u64 {
        self.shard_requests[shard].load(Ordering::Relaxed)
    }

    /// Requests the shards have dequeued in total.
    pub fn total_engine_requests(&self) -> u64 {
        self.engine_requests.load(Ordering::Relaxed)
    }

    /// Counts one actual model evaluation (a cache miss) on a shard.
    pub fn tape_run(&self, shard: usize) {
        self.tape_runs.fetch_add(1, Ordering::Relaxed);
        self.shard_tape_runs[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// Total model evaluations the engine has run.
    pub fn total_tape_runs(&self) -> u64 {
        self.tape_runs.load(Ordering::Relaxed)
    }

    /// Records one batched forecast run answering `size` distinct windows.
    pub fn record_batch(&self, size: u64) {
        let bucket = BATCH_BUCKET_BOUNDS
            .iter()
            .position(|&b| size <= b)
            .expect("last bound is u64::MAX");
        self.batch_size[bucket].fetch_add(1, Ordering::Relaxed);
        self.batch_size_sum.fetch_add(size, Ordering::Relaxed);
    }

    /// Batched forecast runs recorded so far.
    pub fn total_batches(&self) -> u64 {
        self.batch_size
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Windows answered across all batched forecast runs. Strictly greater
    /// than [`Metrics::total_batches`] iff at least one batch grouped more
    /// than one window.
    pub fn total_batched_windows(&self) -> u64 {
        self.batch_size_sum.load(Ordering::Relaxed)
    }

    /// Publishes the inference tape's buffer-pool statistics (the engine
    /// thread calls this after each tape run).
    pub fn set_pool_stats(&self, stats: st_tensor::PoolStats, free_bytes: u64) {
        self.pool_hits.store(stats.hits, Ordering::Relaxed);
        self.pool_misses.store(stats.misses, Ordering::Relaxed);
        self.pool_released.store(stats.released, Ordering::Relaxed);
        self.pool_free_bytes.store(free_bytes, Ordering::Relaxed);
    }

    /// The last published pool statistics, as `(hits, misses, released)`.
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        (
            self.pool_hits.load(Ordering::Relaxed),
            self.pool_misses.load(Ordering::Relaxed),
            self.pool_released.load(Ordering::Relaxed),
        )
    }

    /// Total requests across all routes.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total error responses.
    pub fn total_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Total engine cache hits.
    pub fn total_cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Renders all counters as `GET /metrics` plain text: one family per
    /// counter/gauge with `# HELP`/`# TYPE` headers, cumulative histogram
    /// buckets with `_sum`/`_count`, per-route latency summaries, pool
    /// gauges and the st-par scheduling counters.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let header = |out: &mut String, name: &str, kind: &str, help: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };

        header(
            &mut out,
            "st_serve_requests_total",
            "counter",
            "Requests served, by route.",
        );
        for (i, (_, name)) in ROUTES.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_requests_total{{route=\"{name}\"}} {}\n",
                self.requests[i].load(Ordering::Relaxed)
            ));
        }

        header(
            &mut out,
            "st_serve_errors_total",
            "counter",
            "Responses with status >= 400.",
        );
        out.push_str(&format!(
            "st_serve_errors_total {}\n",
            self.errors.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_cache_hits_total",
            "counter",
            "Requests served from the engine's window-version cache.",
        );
        out.push_str(&format!(
            "st_serve_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_rejected_connections_total",
            "counter",
            "Connections rejected by the max-connections limit.",
        );
        out.push_str(&format!(
            "st_serve_rejected_connections_total {}\n",
            self.rejected_connections.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_queue_depth",
            "gauge",
            "Requests queued for (or being handled by) the engine thread.",
        );
        out.push_str(&format!(
            "st_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_engine_requests_total",
            "counter",
            "Requests the engine thread has dequeued.",
        );
        out.push_str(&format!(
            "st_serve_engine_requests_total {}\n",
            self.engine_requests.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_tape_runs_total",
            "counter",
            "Model evaluations run by the engine (cache misses).",
        );
        out.push_str(&format!(
            "st_serve_tape_runs_total {}\n",
            self.tape_runs.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_shard_requests_total",
            "counter",
            "Requests dequeued, by engine shard.",
        );
        for (i, c) in self.shard_requests.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_shard_requests_total{{shard=\"{i}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }

        header(
            &mut out,
            "st_serve_shard_queue_depth",
            "gauge",
            "Requests queued for (or being handled by) each shard.",
        );
        for (i, c) in self.shard_queue_depth.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_shard_queue_depth{{shard=\"{i}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }

        header(
            &mut out,
            "st_serve_shard_tape_runs_total",
            "counter",
            "Model evaluations run (cache misses), by engine shard.",
        );
        for (i, c) in self.shard_tape_runs.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_shard_tape_runs_total{{shard=\"{i}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }

        header(
            &mut out,
            "st_serve_batch_size",
            "histogram",
            "Distinct windows answered per batched forecast run.",
        );
        let mut batch_cumulative = 0u64;
        for (i, label) in BATCH_BUCKET_LABELS.iter().enumerate() {
            batch_cumulative += self.batch_size[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "st_serve_batch_size_bucket{{le=\"{label}\"}} {batch_cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "st_serve_batch_size_sum {}\n",
            self.batch_size_sum.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("st_serve_batch_size_count {batch_cumulative}\n"));

        header(
            &mut out,
            "st_serve_latency",
            "histogram",
            "Request latency, microsecond buckets.",
        );
        let mut cumulative = 0u64;
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            cumulative += self.latency[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "st_serve_latency_bucket{{le=\"{label}\"}} {cumulative}\n"
            ));
        }
        let total_us: u64 = self
            .latency_us
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        out.push_str(&format!("st_serve_latency_sum {total_us}\n"));
        out.push_str(&format!("st_serve_latency_count {cumulative}\n"));

        header(
            &mut out,
            "st_serve_route_latency_us",
            "summary",
            "Per-route latency sum (microseconds) and request count.",
        );
        for (i, (_, name)) in ROUTES.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_route_latency_us_sum{{route=\"{name}\"}} {}\n",
                self.latency_us[i].load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "st_serve_route_latency_us_count{{route=\"{name}\"}} {}\n",
                self.requests[i].load(Ordering::Relaxed)
            ));
        }

        header(
            &mut out,
            "st_serve_pool_acquires_total",
            "counter",
            "Inference tape buffer-pool acquires, by outcome.",
        );
        out.push_str(&format!(
            "st_serve_pool_acquires_total{{outcome=\"hit\"}} {}\n",
            self.pool_hits.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "st_serve_pool_acquires_total{{outcome=\"miss\"}} {}\n",
            self.pool_misses.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_pool_released_total",
            "counter",
            "Buffers returned to the inference tape's pool.",
        );
        out.push_str(&format!(
            "st_serve_pool_released_total {}\n",
            self.pool_released.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_pool_free_bytes",
            "gauge",
            "Bytes held by the inference tape pool's free buffers.",
        );
        out.push_str(&format!(
            "st_serve_pool_free_bytes {}\n",
            self.pool_free_bytes.load(Ordering::Relaxed)
        ));

        let par = st_par::stats();
        header(
            &mut out,
            "st_par_regions_total",
            "counter",
            "Parallel-primitive regions, by dispatch kind.",
        );
        out.push_str(&format!(
            "st_par_regions_total{{kind=\"parallel\"}} {}\n",
            par.par_regions
        ));
        out.push_str(&format!(
            "st_par_regions_total{{kind=\"serial\"}} {}\n",
            par.serial_regions
        ));

        header(
            &mut out,
            "st_par_tasks_total",
            "counter",
            "Tasks dispatched by parallel regions.",
        );
        out.push_str(&format!("st_par_tasks_total {}\n", par.tasks));

        header(
            &mut out,
            "st_par_busy_ns_total",
            "counter",
            "Nanoseconds workers spent in claim loops.",
        );
        out.push_str(&format!("st_par_busy_ns_total {}\n", par.busy_ns));

        header(
            &mut out,
            "st_par_utilization",
            "gauge",
            "Worker busy time over parallel-region capacity, 0 to 1.",
        );
        out.push_str(&format!("st_par_utilization {:.6}\n", par.utilization()));

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_routes_errors_and_buckets() {
        let m = Metrics::new();
        m.record(Route::Forecast, 50, false);
        m.record(Route::Forecast, 5_000, false);
        m.record(Route::Observe, 500, true);
        m.cache_hit();
        m.reject_connection();
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.total_cache_hits(), 1);
        let text = m.render();
        assert!(text.contains("st_serve_requests_total{route=\"forecast\"} 2"));
        assert!(text.contains("st_serve_requests_total{route=\"observe\"} 1"));
        assert!(text.contains("st_serve_errors_total 1"));
        assert!(text.contains("st_serve_cache_hits_total 1"));
        assert!(text.contains("st_serve_rejected_connections_total 1"));
        // Cumulative: ≤100us holds 1, ≤1ms holds 2, ≤10ms (and beyond) 3.
        assert!(text.contains("st_serve_latency_bucket{le=\"100us\"} 1"));
        assert!(text.contains("st_serve_latency_bucket{le=\"1ms\"} 2"));
        assert!(text.contains("st_serve_latency_bucket{le=\"+inf\"} 3"));
        // Histogram _sum/_count complete the family.
        assert!(text.contains("st_serve_latency_sum 5550"));
        assert!(text.contains("st_serve_latency_count 3"));
        // Per-route summaries.
        assert!(text.contains("st_serve_route_latency_us_sum{route=\"forecast\"} 5050"));
        assert!(text.contains("st_serve_route_latency_us_count{route=\"forecast\"} 2"));
    }

    #[test]
    fn huge_latency_lands_in_last_bucket() {
        let m = Metrics::new();
        m.record(Route::Healthz, u64::MAX, false);
        assert!(m
            .render()
            .contains("st_serve_latency_bucket{le=\"+inf\"} 1"));
        assert!(m.render().contains("st_serve_latency_bucket{le=\"1s\"} 0"));
    }

    #[test]
    fn every_family_has_help_and_type() {
        let text = Metrics::new().render();
        let mut families = std::collections::BTreeSet::new();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line
                .split(|c| c == '{' || c == ' ')
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            families.insert(name.to_string());
        }
        assert!(!families.is_empty());
        for family in &families {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
    }

    #[test]
    fn queue_and_engine_counters_track_lifecycle() {
        let m = Metrics::new();
        m.queue_enter(0);
        m.queue_enter(0);
        assert_eq!(m.queue_depth(), 2);
        m.queue_exit(0);
        assert_eq!(m.queue_depth(), 1);
        m.tape_run(0);
        m.set_pool_stats(
            st_tensor::PoolStats {
                hits: 90,
                misses: 10,
                released: 100,
            },
            4096,
        );
        assert_eq!(m.total_tape_runs(), 1);
        assert_eq!(m.pool_stats(), (90, 10, 100));
        let text = m.render();
        assert!(text.contains("st_serve_queue_depth 1"));
        assert!(text.contains("st_serve_engine_requests_total 1"));
        assert!(text.contains("st_serve_tape_runs_total 1"));
        assert!(text.contains("st_serve_pool_acquires_total{outcome=\"hit\"} 90"));
        assert!(text.contains("st_serve_pool_free_bytes 4096"));
        assert!(text.contains("st_par_utilization "));
    }

    #[test]
    fn batch_size_histogram_is_cumulative() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(1);
        m.record_batch(3);
        m.record_batch(16);
        m.record_batch(40);
        assert_eq!(m.total_batches(), 5);
        assert_eq!(m.total_batched_windows(), 61);
        let text = m.render();
        assert!(text.contains("st_serve_batch_size_bucket{le=\"1\"} 2"));
        assert!(text.contains("st_serve_batch_size_bucket{le=\"2\"} 2"));
        assert!(text.contains("st_serve_batch_size_bucket{le=\"4\"} 3"));
        assert!(text.contains("st_serve_batch_size_bucket{le=\"16\"} 4"));
        assert!(text.contains("st_serve_batch_size_bucket{le=\"+inf\"} 5"));
        assert!(text.contains("st_serve_batch_size_sum 61"));
        assert!(text.contains("st_serve_batch_size_count 5"));
    }

    #[test]
    fn shard_counters_sum_to_the_aggregate() {
        let m = Metrics::with_shards(3);
        assert_eq!(m.num_shards(), 3);
        for (shard, requests) in [(0usize, 4u64), (1, 2), (2, 1)] {
            for _ in 0..requests {
                m.queue_enter(shard);
                m.queue_exit(shard);
            }
        }
        m.tape_run(1);
        m.tape_run(1);
        m.tape_run(2);
        let per_shard: u64 = (0..3).map(|s| m.shard_requests(s)).sum();
        assert_eq!(per_shard, m.total_engine_requests());
        assert_eq!(m.total_engine_requests(), 7);
        let text = m.render();
        assert!(text.contains("st_serve_shard_requests_total{shard=\"0\"} 4"));
        assert!(text.contains("st_serve_shard_requests_total{shard=\"2\"} 1"));
        assert!(text.contains("st_serve_shard_queue_depth{shard=\"1\"} 0"));
        assert!(text.contains("st_serve_shard_tape_runs_total{shard=\"1\"} 2"));
        assert!(text.contains("st_serve_shard_tape_runs_total{shard=\"0\"} 0"));
    }
}
