//! Batched GRU cell.
//!
//! A lighter recurrent alternative to [`crate::LstmCell`]; the DCRNN
//! comparator uses a graph-convolutional variant of this update, and the
//! plain cell is provided for downstream users who want a smaller
//! recurrent backbone.

use crate::{ParamId, ParamStore, Session};
use st_autodiff::Var;
use st_tensor::{xavier_matrix, Matrix, StRng};

/// A batched GRU cell with shared parameters.
///
/// Gate layout in the fused weight matrices: `[reset | update | candidate]`.
///
/// # Examples
///
/// ```
/// use st_nn::{GruCell, ParamStore, Session};
/// use st_tensor::{rng, Matrix};
///
/// let mut store = ParamStore::new();
/// let cell = GruCell::new(&mut store, &mut rng(0), 3, 4, "gru");
/// let mut sess = Session::new(&store);
/// let h0 = cell.zero_state(&mut sess, 5);
/// let x = sess.constant(Matrix::ones(5, 3));
/// let h1 = cell.step(&mut sess, &store, x, h0);
/// assert_eq!(sess.tape.value(h1).shape(), (5, 4));
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    w: ParamId, // input → 3 gates, (in × 3q)
    u: ParamId, // hidden → 3 gates, (q × 3q)
    b: ParamId, // (1 × 3q)
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Creates a cell with Xavier-initialised weights and zero biases.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StRng,
        in_dim: usize,
        hidden_dim: usize,
        name: &str,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            xavier_matrix(rng, in_dim, 3 * hidden_dim),
        );
        let u = store.add(
            format!("{name}.u"),
            xavier_matrix(rng, hidden_dim, 3 * hidden_dim),
        );
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, 3 * hidden_dim));
        Self {
            w,
            u,
            b,
            in_dim,
            hidden_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Zero initial hidden state for a batch of `batch` rows.
    pub fn zero_state(&self, sess: &mut Session, batch: usize) -> Var {
        sess.constant(Matrix::zeros(batch, self.hidden_dim))
    }

    /// One step: `h' = u⊙h + (1−u)⊙tanh(W_c x + U_c (r⊙h) + b_c)`.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `in_dim`.
    pub fn step(&self, sess: &mut Session, store: &ParamStore, x: Var, h: Var) -> Var {
        assert_eq!(
            sess.tape.value(x).cols(),
            self.in_dim,
            "gru cell expects width {}",
            self.in_dim
        );
        let q = self.hidden_dim;
        let batch = sess.tape.value(x).rows();
        let w = sess.var(store, self.w);
        let u = sess.var(store, self.u);
        let b = sess.var(store, self.b);

        let xw = sess.tape.matmul(x, w); // B × 3q
        let hu = sess.tape.matmul(h, u); // B × 3q

        // Reset and update gates use the fused pre-activations directly.
        let xw_r = sess.tape.slice_cols(xw, 0, q);
        let hu_r = sess.tape.slice_cols(hu, 0, q);
        let b_r = sess.tape.slice_cols(b, 0, q);
        let r_pre = sess.tape.add(xw_r, hu_r);
        let r_pre = sess.tape.add_bias(r_pre, b_r);
        let r = sess.tape.sigmoid(r_pre);

        let xw_u = sess.tape.slice_cols(xw, q, 2 * q);
        let hu_u = sess.tape.slice_cols(hu, q, 2 * q);
        let b_u = sess.tape.slice_cols(b, q, 2 * q);
        let u_pre = sess.tape.add(xw_u, hu_u);
        let u_pre = sess.tape.add_bias(u_pre, b_u);
        let z = sess.tape.sigmoid(u_pre);

        // Candidate uses the reset-gated hidden state: U_c·(r⊙h).
        let rh = sess.tape.mul(r, h);
        let u_c = sess.tape.slice_cols(u, 2 * q, 3 * q); // q × q block of the fused param
        let hu_c = sess.tape.matmul(rh, u_c);
        let xw_c = sess.tape.slice_cols(xw, 2 * q, 3 * q);
        let b_c = sess.tape.slice_cols(b, 2 * q, 3 * q);
        let c_pre = sess.tape.add(xw_c, hu_c);
        let c_pre = sess.tape.add_bias(c_pre, b_c);
        let c = sess.tape.tanh(c_pre);

        // h' = z⊙h + (1−z)⊙c.
        let zh = sess.tape.mul(z, h);
        let ones = sess.constant(Matrix::ones(batch, q));
        let inv_z = sess.tape.sub(ones, z);
        let zc = sess.tape.mul(inv_z, c);
        sess.tape.add(zh, zc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autodiff::check_gradient;
    use st_tensor::rng;

    #[test]
    fn step_shapes_and_bounds() {
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng(1), 3, 4, "gru");
        let mut sess = Session::new(&store);
        let h0 = cell.zero_state(&mut sess, 2);
        let x = sess.constant(Matrix::from_rows(&[&[10.0, -10.0, 5.0], &[0.0, 0.0, 0.0]]));
        let h1 = cell.step(&mut sess, &store, x, h0);
        let v = sess.tape.value(h1);
        assert_eq!(v.shape(), (2, 4));
        // From a zero state, h' = (1−z)·tanh(…) is inside (−1, 1).
        assert!(v.as_slice().iter().all(|h| h.abs() < 1.0));
    }

    #[test]
    fn state_evolves() {
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng(2), 2, 3, "gru");
        let mut sess = Session::new(&store);
        let mut h = cell.zero_state(&mut sess, 1);
        let x = sess.constant(Matrix::from_rows(&[&[1.0, -0.4]]));
        let h1 = cell.step(&mut sess, &store, x, h);
        h = h1;
        let h2 = cell.step(&mut sess, &store, x, h);
        assert_ne!(sess.tape.value(h1), sess.tape.value(h2));
    }

    #[test]
    fn unrolled_gradcheck() {
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng(3), 2, 3, "gru");
        let xs = [
            Matrix::from_rows(&[&[0.4, -0.2]]),
            Matrix::from_rows(&[&[-0.7, 0.5]]),
        ];
        let run = |store: &ParamStore| -> (f64, Matrix) {
            let mut sess = Session::new(store);
            let mut h = cell.zero_state(&mut sess, 1);
            for x0 in &xs {
                let x = sess.constant(x0.clone());
                h = cell.step(&mut sess, store, x, h);
            }
            let loss = sess.tape.mean(h);
            sess.backward(loss);
            let mut tmp = store.clone();
            tmp.zero_grads();
            sess.write_grads(&mut tmp);
            (sess.tape.value(loss)[(0, 0)], tmp.grad(cell.u).clone())
        };
        let (_, gu) = run(&store);
        let res = check_gradient(store.value(cell.u), &gu, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(cell.u, m.clone());
            run(&s2).0
        });
        assert!(res.passes(1e-5), "gru recurrent grad failed: {res:?}");
    }
}
