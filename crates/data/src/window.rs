//! Sliding-window sampling for sequence-to-sequence forecasting.
//!
//! The paper uses 12 historical timestamps (1 hour at 5-minute resolution)
//! to predict up to the next 12. A [`WindowSampler`] walks a dataset
//! chronologically and yields [`WindowSample`]s carrying the input window
//! (values + mask), the target horizon and the time-of-day slots of the
//! input steps (needed by the HGCN's interval weighting).

use crate::TrafficDataset;
use st_tensor::Matrix;

/// One training/evaluation sample: `history` → `horizon`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Input values per step: `T` matrices of shape `N × D` (hidden entries
    /// zeroed).
    pub inputs: Vec<Matrix>,
    /// `{0,1}` observation masks per input step, same shapes as `inputs`.
    pub masks: Vec<Matrix>,
    /// Ground-truth values per input step (used for imputation scoring on
    /// synthetic data; identical to `inputs` where observed).
    pub truths: Vec<Matrix>,
    /// Target values per horizon step: `T'` matrices of shape `N × D`.
    pub targets: Vec<Matrix>,
    /// `{0,1}` masks for the targets (scoring only counts observed truth).
    pub target_masks: Vec<Matrix>,
    /// Time-of-day slot of each input step.
    pub slots: Vec<usize>,
    /// Absolute start timestamp of the window within the source dataset.
    pub start: usize,
}

impl WindowSample {
    /// History length `T`.
    pub fn history_len(&self) -> usize {
        self.inputs.len()
    }

    /// Horizon length `T'`.
    pub fn horizon_len(&self) -> usize {
        self.targets.len()
    }
}

/// Chronological sliding-window sampler.
///
/// # Examples
///
/// ```
/// use st_data::{generate_pems, PemsConfig, WindowSampler};
///
/// let ds = generate_pems(&PemsConfig { num_nodes: 3, num_days: 1, ..Default::default() });
/// let sampler = WindowSampler::new(12, 6, 12);
/// let windows = sampler.sample(&ds);
/// assert_eq!(windows.len(), sampler.num_windows(ds.num_times()));
/// assert_eq!(windows[0].history_len(), 12);
/// assert_eq!(windows[0].horizon_len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct WindowSampler {
    history: usize,
    horizon: usize,
    stride: usize,
}

impl WindowSampler {
    /// Creates a sampler producing `history`-step inputs and `horizon`-step
    /// targets, advancing by `stride` between windows.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(history: usize, horizon: usize, stride: usize) -> Self {
        assert!(
            history > 0 && horizon > 0 && stride > 0,
            "window sizes must be positive"
        );
        Self {
            history,
            horizon,
            stride,
        }
    }

    /// The paper's setting: 12 history steps, 12 horizon steps, stride 1.
    pub fn paper_default() -> Self {
        Self::new(12, 12, 1)
    }

    /// Number of windows available in a dataset of `t` timestamps.
    pub fn num_windows(&self, t: usize) -> usize {
        let span = self.history + self.horizon;
        if t < span {
            0
        } else {
            (t - span) / self.stride + 1
        }
    }

    /// Extracts all windows from the dataset.
    ///
    /// For synthetic data `truths` carries the complete ground truth, so
    /// imputation error can be computed exactly on hidden entries.
    pub fn sample(&self, ds: &TrafficDataset) -> Vec<WindowSample> {
        let t = ds.num_times();
        let count = self.num_windows(t);
        let mut out = Vec::with_capacity(count);
        for w in 0..count {
            let start = w * self.stride;
            out.push(self.window_at(ds, start));
        }
        out
    }

    /// Extracts the single window starting at timestamp `start`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit in the dataset.
    pub fn window_at(&self, ds: &TrafficDataset, start: usize) -> WindowSample {
        assert!(
            start + self.history + self.horizon <= ds.num_times(),
            "window starting at {start} does not fit"
        );
        let mut inputs = Vec::with_capacity(self.history);
        let mut masks = Vec::with_capacity(self.history);
        let mut truths = Vec::with_capacity(self.history);
        let mut slots = Vec::with_capacity(self.history);
        for i in 0..self.history {
            let t = start + i;
            let truth = ds.values.time_slice(t);
            let mask = ds.mask.time_slice(t);
            inputs.push(truth.hadamard(&mask));
            masks.push(mask);
            truths.push(truth);
            slots.push(ds.slot_of(t));
        }
        let mut targets = Vec::with_capacity(self.horizon);
        let mut target_masks = Vec::with_capacity(self.horizon);
        for i in 0..self.horizon {
            let t = start + self.history + i;
            targets.push(ds.values.time_slice(t));
            target_masks.push(ds.mask.time_slice(t));
        }
        WindowSample {
            inputs,
            masks,
            truths,
            targets,
            target_masks,
            slots,
            start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::RoadNetwork;
    use st_tensor::Tensor3;

    fn toy(t: usize) -> TrafficDataset {
        let values = Tensor3::from_fn(2, 1, t, |n, _, tt| (n * 1000 + tt) as f64);
        let mut mask = Tensor3::ones(2, 1, t);
        if t > 3 {
            mask[(0, 0, 3)] = 0.0;
        }
        TrafficDataset::new("toy", values, mask, RoadNetwork::corridor(2, 1.0), 5)
    }

    #[test]
    fn window_count() {
        let s = WindowSampler::new(12, 12, 1);
        assert_eq!(s.num_windows(24), 1);
        assert_eq!(s.num_windows(23), 0);
        assert_eq!(s.num_windows(30), 7);
        let s2 = WindowSampler::new(12, 12, 6);
        assert_eq!(s2.num_windows(36), 3);
    }

    #[test]
    fn window_contents_line_up() {
        let ds = toy(30);
        let s = WindowSampler::new(4, 2, 1);
        let w = s.window_at(&ds, 5);
        assert_eq!(w.history_len(), 4);
        assert_eq!(w.horizon_len(), 2);
        assert_eq!(w.truths[0][(0, 0)], 5.0);
        assert_eq!(w.truths[3][(1, 0)], 1008.0);
        assert_eq!(w.targets[0][(0, 0)], 9.0);
        assert_eq!(w.targets[1][(0, 0)], 10.0);
        assert_eq!(w.slots, vec![5, 6, 7, 8]);
        assert_eq!(w.start, 5);
    }

    #[test]
    fn hidden_entries_zeroed_in_inputs_but_kept_in_truths() {
        let ds = toy(30);
        let s = WindowSampler::new(6, 1, 1);
        let w = s.window_at(&ds, 0);
        assert_eq!(w.inputs[3][(0, 0)], 0.0); // masked
        assert_eq!(w.truths[3][(0, 0)], 3.0); // ground truth survives
        assert_eq!(w.masks[3][(0, 0)], 0.0);
        assert_eq!(w.masks[3][(1, 0)], 1.0);
    }

    #[test]
    fn sample_walks_chronologically() {
        let ds = toy(20);
        let s = WindowSampler::new(4, 2, 3);
        let windows = s.sample(&ds);
        assert_eq!(windows.len(), s.num_windows(20));
        assert_eq!(windows[0].start, 0);
        assert_eq!(windows[1].start, 3);
    }

    #[test]
    fn slots_wrap_daily() {
        let values = Tensor3::zeros(1, 1, 600);
        let mask = Tensor3::ones(1, 1, 600);
        let ds = TrafficDataset::new("w", values, mask, RoadNetwork::corridor(1, 1.0), 5);
        let s = WindowSampler::new(4, 1, 1);
        let w = s.window_at(&ds, 286);
        assert_eq!(w.slots, vec![286, 287, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn window_past_end_panics() {
        let ds = toy(10);
        let s = WindowSampler::new(8, 4, 1);
        let _ = s.window_at(&ds, 0);
    }
}
