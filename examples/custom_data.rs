//! Bring your own data: define a custom road network, load measurements
//! from CSV, and run the full RIHGCN pipeline on them.
//!
//! This is the integration path for real sensor extracts (e.g. a true PeMS
//! download converted to the long CSV format documented in
//! `st_data::read_csv`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use rihgcn::core::{
    evaluate_prediction, fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig,
};
use rihgcn::data::{read_csv, write_csv, WindowSampler};
use rihgcn::graph::{RoadNetwork, RoadSegment};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A custom road network: four segments of an arterial with explicit
    //    geometry and metadata (positions in km).
    let network = RoadNetwork::new(vec![
        RoadSegment {
            id: 0,
            x: 0.0,
            y: 0.0,
            lanes: 2,
            speed_limit: 50.0,
            traffic_lights: 1,
        },
        RoadSegment {
            id: 1,
            x: 0.9,
            y: 0.1,
            lanes: 2,
            speed_limit: 50.0,
            traffic_lights: 2,
        },
        RoadSegment {
            id: 2,
            x: 1.8,
            y: 0.3,
            lanes: 3,
            speed_limit: 60.0,
            traffic_lights: 1,
        },
        RoadSegment {
            id: 3,
            x: 2.6,
            y: 0.2,
            lanes: 3,
            speed_limit: 60.0,
            traffic_lights: 0,
        },
    ]);

    // 2. Your measurements in the long CSV format. Here we synthesise two
    //    days of 5-minute speeds in-memory to stand in for a real file;
    //    with real data you would pass a `BufReader<File>` instead.
    let mut csv = String::from("node,feature,time,value,observed\n");
    let slots = 288 * 2;
    for node in 0..4 {
        for t in 0..slots {
            let minute = (t % 288) as f64 * 5.0;
            let rush = (-0.5 * ((minute - 510.0) / 90.0_f64).powi(2)).exp();
            let speed =
                52.0 - 18.0 * rush + (node as f64) * 1.5 + ((t * 37 + node * 11) % 13) as f64 * 0.3;
            // Simulate ~25% sensor dropout.
            let observed = (t * 7 + node * 3) % 4 != 0;
            if observed {
                csv.push_str(&format!("{node},0,{t},{speed:.3},1\n"));
            } else {
                csv.push_str(&format!("{node},0,{t},,0\n"));
            }
        }
    }
    let ds = read_csv(csv.as_bytes(), "arterial", network, 5)?;
    println!(
        "loaded {} nodes × {} timestamps from CSV ({:.0}% missing)",
        ds.num_nodes(),
        ds.num_times(),
        ds.missing_rate() * 100.0
    );

    // 3. Standard pipeline: split, normalise, window, train, evaluate.
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(12, 6, 4);
    let cfg = RihgcnConfig {
        gcn_dim: 6,
        lstm_dim: 8,
        num_temporal_graphs: 2,
        horizon: 6,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    let tc = TrainConfig {
        max_epochs: 6,
        patience: 3,
        ..Default::default()
    };
    fit(
        &mut model,
        &sampler.sample(&norm.train),
        &sampler.sample(&norm.val),
        &tc,
    );
    let metrics = evaluate_prediction(&model, &sampler.sample(&norm.test), &z);
    println!("30-minute forecast on the custom network: {metrics}");

    // 4. Datasets round-trip back to CSV for interchange.
    let mut out = Vec::new();
    write_csv(&ds, &mut out)?;
    println!("re-exported {} CSV bytes", out.len());
    Ok(())
}
