//! Time-series distance measures: DTW, ERP and LCSS.
//!
//! The paper measures similarity between road segments' historical profiles
//! with Dynamic Time Warping (Section III-D), mentioning Edit distance with
//! Real Penalty and Longest Common Subsequence as alternatives; all three are
//! implemented here so the temporal-graph construction can be ablated.
//!
//! The O(N·M) dynamic programs are split into two phases per row: a
//! branch-free, data-independent **cost precompute** over the whole row
//! (pointwise `(aᵢ−bⱼ)²`, `|aᵢ−bⱼ|` or `≤ ε` tests — tight loops the
//! compiler autovectorises) followed by the inherently serial **scan**,
//! which carries the diagonal and left cells in registers so the only work
//! left on the loop-carried critical path is one `min`/`max` and one add.
//! All DP rows live in a reusable [`DistanceScratch`] so the O(N²) pair
//! loop of [`pairwise_distances`] performs no per-pair allocations. The
//! restructuring is value-preserving: every cell combines the same operands
//! in the same order as the textbook recurrence, so results are bit-exact
//! against the pre-optimisation implementation.

/// A pluggable time-series distance measure.
///
/// The paper uses DTW for temporal-graph construction and names ERP and
/// LCSS as alternatives (§III-D); this enum lets the graph builders and the
/// ablation benches switch between all three.
///
/// # Examples
///
/// ```
/// use st_graph::SeriesDistance;
///
/// let a = [1.0, 2.0, 3.0];
/// assert_eq!(SeriesDistance::Dtw.compute(&a, &a), 0.0);
/// assert_eq!(SeriesDistance::Erp { gap: 0.0 }.compute(&a, &a), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesDistance {
    /// Dynamic Time Warping (the paper's choice).
    Dtw,
    /// Edit distance with Real Penalty, with the given gap value.
    Erp {
        /// Gap (reference) value `g`.
        gap: f64,
    },
    /// LCSS-based distance with the given matching threshold.
    Lcss {
        /// Pointwise matching threshold `ε`.
        epsilon: f64,
    },
}

impl Default for SeriesDistance {
    fn default() -> Self {
        SeriesDistance::Dtw
    }
}

impl SeriesDistance {
    /// Computes the distance between two scalar series.
    pub fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        self.compute_with(a, b, &mut DistanceScratch::default())
    }

    /// [`SeriesDistance::compute`] reusing caller-owned DP buffers.
    ///
    /// Hot loops (the O(N²) pair sweep in [`pairwise_distances`]) call this
    /// so every pair after the first is allocation-free.
    pub fn compute_with(&self, a: &[f64], b: &[f64], scratch: &mut DistanceScratch) -> f64 {
        match *self {
            SeriesDistance::Dtw => dtw_impl(a, b, usize::MAX, scratch),
            SeriesDistance::Erp { gap } => erp_impl(a, b, gap, scratch),
            SeriesDistance::Lcss { epsilon } => lcss_impl(a, b, epsilon, scratch),
        }
    }
}

/// Reusable DP row buffers for the distance kernels.
///
/// Each buffer is resized (never shrunk) on use, so a scratch that has seen
/// the longest series in a workload never allocates again.
///
/// # Examples
///
/// ```
/// use st_graph::{DistanceScratch, SeriesDistance};
///
/// let mut scratch = DistanceScratch::default();
/// let a = [1.0, 2.0, 3.0];
/// let d = SeriesDistance::Dtw.compute_with(&a, &a, &mut scratch);
/// assert_eq!(d, 0.0);
/// ```
#[derive(Debug, Default)]
pub struct DistanceScratch {
    /// Previous DP row.
    prev: Vec<f64>,
    /// Current DP row.
    curr: Vec<f64>,
    /// Per-row pointwise costs (the vectorisable precompute).
    cost: Vec<f64>,
    /// Per-element gap costs `|bⱼ − g|` (ERP only, computed once per call).
    gap: Vec<f64>,
    /// Previous DP row for the integer LCSS recurrence.
    prev_len: Vec<usize>,
    /// Current DP row for the integer LCSS recurrence.
    curr_len: Vec<usize>,
    /// Pointwise `|aᵢ − bⱼ| ≤ ε` matches (LCSS only).
    hit: Vec<bool>,
}

impl DistanceScratch {
    /// A scratch with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resizes `buf` to `len`, filling *all* elements with `value`.
fn reset_row<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// Dynamic Time Warping distance between two scalar series.
///
/// Handles series of different lengths; uses squared pointwise cost summed
/// along the optimal warping path, returned as the square root (a common
/// DTW convention that keeps units comparable to Euclidean distance).
///
/// Returns `f64::INFINITY` if either series is empty (nothing to align).
///
/// # Examples
///
/// ```
/// let d = st_graph::dtw(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
/// assert_eq!(d, 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_windowed(a, b, usize::MAX)
}

/// DTW with a Sakoe–Chiba band of half-width `window` (in indices).
///
/// `window = usize::MAX` disables the band. A tighter band speeds up the
/// computation and regularises pathological alignments.
///
/// Returns `f64::INFINITY` if either series is empty or the band makes the
/// end state unreachable.
pub fn dtw_windowed(a: &[f64], b: &[f64], window: usize) -> f64 {
    dtw_impl(a, b, window, &mut DistanceScratch::default())
}

fn dtw_impl(a: &[f64], b: &[f64], window: usize, s: &mut DistanceScratch) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // The band must be at least |n−m| wide to reach the corner.
    let w = window.max(n.abs_diff(m));
    reset_row(&mut s.prev, m + 1, f64::INFINITY);
    reset_row(&mut s.curr, m + 1, f64::INFINITY);
    reset_row(&mut s.cost, m, 0.0);
    s.prev[0] = 0.0;
    for i in 1..=n {
        let ai = a[i - 1];
        let lo = i.saturating_sub(w).max(1);
        let hi = i.saturating_add(w).min(m);
        // Phase 1 — branch-free pointwise costs over the band, off the DP
        // critical path so the compiler can vectorise it.
        let cost = &mut s.cost[lo - 1..hi];
        for (c, &bv) in cost.iter_mut().zip(&b[lo - 1..hi]) {
            let d = ai - bv;
            *c = d * d;
        }
        // Phase 2 — the serial scan. `diag` carries prev[j-1] and `left`
        // carries curr[j-1] in registers; the `min` association order
        // matches the textbook recurrence exactly.
        s.curr.fill(f64::INFINITY);
        let mut diag = s.prev[lo - 1];
        let mut left = f64::INFINITY;
        for j in lo..=hi {
            let up = s.prev[j];
            let v = cost[j - lo] + diag.min(up).min(left);
            s.curr[j] = v;
            left = v;
            diag = up;
        }
        std::mem::swap(&mut s.prev, &mut s.curr);
    }
    s.prev[m].sqrt()
}

/// Multivariate DTW: the mean of per-dimension DTW distances.
///
/// Each element of `a`/`b` is one dimension's series. Dimensions present in
/// only one input are ignored; returns `f64::INFINITY` when no dimension is
/// comparable.
pub fn dtw_multivariate(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let dims = a.len().min(b.len());
    if dims == 0 {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for d in 0..dims {
        let dist = dtw(&a[d], &b[d]);
        if dist.is_finite() {
            total += dist;
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// Symmetric pairwise distance matrix between nodes' multivariate series.
///
/// `series[n]` holds node `n`'s per-feature scalar series; the distance
/// between two nodes is the mean finite `measure` distance over their
/// common features (0 when no feature is comparable). The diagonal is zero.
///
/// The O(N²) pair loop is the hottest step of temporal-graph construction,
/// so pairs are evaluated across `st-par` workers once the estimated work
/// clears [`st_tensor::parallel_threshold`]. Each pair's distance is
/// computed wholly by one worker and written to a dedicated slot, so the
/// result is bit-identical for any thread count.
pub fn pairwise_distances(series: &[Vec<Vec<f64>>], measure: SeriesDistance) -> st_tensor::Matrix {
    let n = series.len();
    let mut dist = st_tensor::Matrix::zeros(n, n);
    if n < 2 {
        return dist;
    }
    let _span = st_obs::span!("graph.pairwise_distances", n);
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let pair_distance = |&(i, j): &(usize, usize), scratch: &mut DistanceScratch| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for f in 0..series[i].len().min(series[j].len()) {
            let d = measure.compute_with(&series[i][f], &series[j][f], scratch);
            if d.is_finite() {
                total += d;
                count += 1;
            }
        }
        if count > 0 {
            total / count as f64
        } else {
            0.0
        }
    };

    // Work estimate: each DTW/ERP/LCSS pair costs O(len²) per feature.
    let len = series
        .iter()
        .flat_map(|node| node.iter().map(Vec::len))
        .max()
        .unwrap_or(0);
    let features = series.iter().map(Vec::len).max().unwrap_or(0);
    let work = pairs
        .len()
        .saturating_mul(len * len)
        .saturating_mul(features);

    // Pairs are grouped into fixed runs so each worker task reuses one DP
    // scratch across its run; each value is still produced wholly by one
    // task, so results stay bit-identical for any thread count.
    const PAIR_RUN: usize = 8;
    let mut values = vec![0.0; pairs.len()];
    if st_par::num_threads() <= 1 || work < st_tensor::parallel_threshold() {
        let mut scratch = DistanceScratch::default();
        for (v, pair) in values.iter_mut().zip(&pairs) {
            *v = pair_distance(pair, &mut scratch);
        }
    } else {
        st_par::par_chunks_mut(&mut values, PAIR_RUN, |idx, slots| {
            let mut scratch = DistanceScratch::default();
            for (off, v) in slots.iter_mut().enumerate() {
                *v = pair_distance(&pairs[idx * PAIR_RUN + off], &mut scratch);
            }
        });
    }
    for (&(i, j), &d) in pairs.iter().zip(&values) {
        dist[(i, j)] = d;
        dist[(j, i)] = d;
    }
    dist
}

/// Edit distance with Real Penalty (ERP) with gap value `g`.
///
/// A metric (satisfies the triangle inequality) unlike raw DTW. Empty series
/// are handled by pure gap cost.
pub fn erp(a: &[f64], b: &[f64], g: f64) -> f64 {
    erp_impl(a, b, g, &mut DistanceScratch::default())
}

fn erp_impl(a: &[f64], b: &[f64], g: f64, s: &mut DistanceScratch) -> f64 {
    let (n, m) = (a.len(), b.len());
    // Gap costs |bⱼ − g| are row-invariant: computed once, vectorisable.
    reset_row(&mut s.gap, m, 0.0);
    for (gb, &bv) in s.gap.iter_mut().zip(b) {
        *gb = (bv - g).abs();
    }
    // First DP row: prefix sums of the gap costs (same left-to-right
    // association as summing b[..j] directly).
    reset_row(&mut s.prev, m + 1, 0.0);
    for j in 1..=m {
        s.prev[j] = s.prev[j - 1] + s.gap[j - 1];
    }
    reset_row(&mut s.curr, m + 1, 0.0);
    reset_row(&mut s.cost, m, 0.0);
    for i in 1..=n {
        let ai = a[i - 1];
        let ga = (ai - g).abs();
        // Phase 1 — pointwise match costs |aᵢ − bⱼ|, branch-free.
        for (c, &bv) in s.cost.iter_mut().zip(b) {
            *c = (ai - bv).abs();
        }
        // Phase 2 — serial scan with register-carried diagonal and left.
        let mut diag = s.prev[0];
        let mut left = s.prev[0] + ga;
        s.curr[0] = left;
        for j in 1..=m {
            let up = s.prev[j];
            let match_cost = diag + s.cost[j - 1];
            let gap_a = up + ga;
            let gap_b = left + s.gap[j - 1];
            let v = match_cost.min(gap_a).min(gap_b);
            s.curr[j] = v;
            left = v;
            diag = up;
        }
        std::mem::swap(&mut s.prev, &mut s.curr);
    }
    s.prev[m]
}

/// Longest-Common-SubSequence similarity turned into a distance:
/// `1 − |LCSS| / min(n, m)` with matching threshold `epsilon`.
///
/// Returns `1.0` (maximally distant) when either series is empty.
pub fn lcss(a: &[f64], b: &[f64], epsilon: f64) -> f64 {
    lcss_impl(a, b, epsilon, &mut DistanceScratch::default())
}

fn lcss_impl(a: &[f64], b: &[f64], epsilon: f64, s: &mut DistanceScratch) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 1.0;
    }
    reset_row(&mut s.prev_len, m + 1, 0);
    reset_row(&mut s.curr_len, m + 1, 0);
    reset_row(&mut s.hit, m, false);
    for i in 1..=n {
        let ai = a[i - 1];
        // Phase 1 — pointwise ε-matches, a branch-free compare sweep.
        for (h, &bv) in s.hit.iter_mut().zip(b) {
            *h = (ai - bv).abs() <= epsilon;
        }
        // Phase 2 — serial scan; `curr_len[0]` stays 0 so `left` starts 0.
        let mut diag = s.prev_len[0];
        let mut left = 0usize;
        for j in 1..=m {
            let up = s.prev_len[j];
            let v = if s.hit[j - 1] { diag + 1 } else { up.max(left) };
            s.curr_len[j] = v;
            left = v;
            diag = up;
        }
        std::mem::swap(&mut s.prev_len, &mut s.curr_len);
    }
    1.0 - s.prev_len[m] as f64 / n.min(m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtw_identity_is_zero() {
        let s = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw(&s, &s), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 2.5, 2.0];
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn dtw_aligns_shifted_series() {
        // A time-shifted copy should be much closer under DTW than
        // pointwise Euclidean distance.
        let a: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.5).sin()).collect();
        let b: Vec<f64> = (0..20).map(|i| (((i + 2) as f64) * 0.5).sin()).collect();
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let d = dtw(&a, &b);
        assert!(d < euclid, "dtw {d} should beat euclidean {euclid}");
    }

    #[test]
    fn dtw_brute_force_agreement() {
        // Compare against a straightforward full-matrix implementation.
        fn brute(a: &[f64], b: &[f64]) -> f64 {
            let (n, m) = (a.len(), b.len());
            let mut dp = vec![vec![f64::INFINITY; m + 1]; n + 1];
            dp[0][0] = 0.0;
            for i in 1..=n {
                for j in 1..=m {
                    let c = (a[i - 1] - b[j - 1]).powi(2);
                    dp[i][j] = c + dp[i - 1][j - 1].min(dp[i - 1][j]).min(dp[i][j - 1]);
                }
            }
            dp[n][m].sqrt()
        }
        let a = [0.3, 1.2, -0.5, 2.0, 0.0, 1.1];
        let b = [0.1, 1.0, 0.0, 1.8];
        assert!((dtw(&a, &b) - brute(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn dtw_empty_is_infinite() {
        assert!(dtw(&[], &[1.0]).is_infinite());
        assert!(dtw(&[1.0], &[]).is_infinite());
    }

    #[test]
    fn dtw_window_matches_full_when_wide() {
        let a = [1.0, 2.0, 1.5, 0.5];
        let b = [1.1, 1.9, 1.4, 0.6];
        assert_eq!(dtw_windowed(&a, &b, 100), dtw(&a, &b));
    }

    #[test]
    fn dtw_window_never_below_full() {
        // Constraining alignments can only increase the optimal cost.
        let a: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7 + 1.0).cos()).collect();
        assert!(dtw_windowed(&a, &b, 1) >= dtw(&a, &b) - 1e-12);
    }

    #[test]
    fn multivariate_averages_dimensions() {
        let a = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
        let b = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
        assert_eq!(dtw_multivariate(&a, &b), 0.0);
        let c = vec![vec![2.0, 3.0], vec![5.0, 5.0]];
        assert!(dtw_multivariate(&a, &c) > 0.0);
    }

    #[test]
    fn erp_identity_and_symmetry() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(erp(&a, &a, 0.0), 0.0);
        let b = [2.0, 2.5];
        assert!((erp(&a, &b, 0.0) - erp(&b, &a, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn erp_triangle_inequality_spot_check() {
        let a = [1.0, 2.0];
        let b = [1.5, 2.5, 0.0];
        let c = [0.5];
        let (ab, bc, ac) = (erp(&a, &b, 0.0), erp(&b, &c, 0.0), erp(&a, &c, 0.0));
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn lcss_bounds() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(lcss(&a, &a, 0.01), 0.0);
        let far = [100.0, 200.0, 300.0];
        assert_eq!(lcss(&a, &far, 0.01), 1.0);
        assert_eq!(lcss(&[], &a, 0.1), 1.0);
    }

    #[test]
    fn series_distance_dispatch_matches_functions() {
        let a = [1.0, 2.0, 3.0, 2.0];
        let b = [1.5, 2.5, 2.0];
        assert_eq!(SeriesDistance::Dtw.compute(&a, &b), dtw(&a, &b));
        assert_eq!(
            SeriesDistance::Erp { gap: 0.5 }.compute(&a, &b),
            erp(&a, &b, 0.5)
        );
        assert_eq!(
            SeriesDistance::Lcss { epsilon: 0.6 }.compute(&a, &b),
            lcss(&a, &b, 0.6)
        );
        assert_eq!(SeriesDistance::default(), SeriesDistance::Dtw);
    }

    #[test]
    fn pairwise_matches_the_scalar_functions() {
        // Three nodes, two features each.
        let mk = |phase: f64| -> Vec<Vec<f64>> {
            (0..2)
                .map(|f| {
                    (0..30)
                        .map(|t| ((t as f64) * 0.3 + phase + f as f64).sin())
                        .collect()
                })
                .collect()
        };
        let series = vec![mk(0.0), mk(0.4), mk(2.0)];
        let dist = pairwise_distances(&series, SeriesDistance::Dtw);
        assert_eq!(dist.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(dist[(i, i)], 0.0);
        }
        let expected01 =
            (dtw(&series[0][0], &series[1][0]) + dtw(&series[0][1], &series[1][1])) / 2.0;
        assert_eq!(dist[(0, 1)], expected01);
        assert_eq!(dist[(0, 1)], dist[(1, 0)]);
        // Closer phases are closer in DTW.
        assert!(dist[(0, 1)] < dist[(0, 2)]);
    }

    #[test]
    fn pairwise_handles_degenerate_inputs() {
        assert_eq!(pairwise_distances(&[], SeriesDistance::Dtw).shape(), (0, 0));
        let one = vec![vec![vec![1.0, 2.0]]];
        assert_eq!(
            pairwise_distances(&one, SeriesDistance::Dtw).shape(),
            (1, 1)
        );
        // Nodes with no comparable features get distance 0.
        let mixed = vec![vec![vec![1.0, 2.0]], vec![]];
        let d = pairwise_distances(&mixed, SeriesDistance::Dtw);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn pairwise_is_bitwise_thread_invariant() {
        let series: Vec<Vec<Vec<f64>>> = (0..9)
            .map(|n| {
                (0..2)
                    .map(|f| {
                        (0..40)
                            .map(|t| {
                                ((t + n) as f64 * 0.17 + f as f64 * 0.9).sin() * (n + 1) as f64
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let saved = st_tensor::parallel_threshold();
        st_tensor::set_parallel_threshold(usize::MAX);
        let serial = pairwise_distances(&series, SeriesDistance::Dtw);
        st_tensor::set_parallel_threshold(1);
        st_par::set_num_threads(4);
        let parallel = pairwise_distances(&series, SeriesDistance::Dtw);
        st_par::set_num_threads(0);
        st_tensor::set_parallel_threshold(saved);
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_is_bit_exact_across_measures_and_lengths() {
        // One scratch serving interleaved measures and series lengths must
        // give the same bits as a fresh scratch per call — stale buffer
        // contents or sizing must never leak into results.
        let series: Vec<Vec<f64>> = (0..6)
            .map(|k| {
                (0..10 + 7 * k)
                    .map(|t| ((t * (k + 1)) as f64 * 0.31).sin() * (k as f64 + 0.5))
                    .collect()
            })
            .collect();
        let measures = [
            SeriesDistance::Dtw,
            SeriesDistance::Erp { gap: 0.25 },
            SeriesDistance::Lcss { epsilon: 0.4 },
        ];
        let mut reused = DistanceScratch::new();
        for x in &series {
            for y in &series {
                for measure in &measures {
                    let with_reuse = measure.compute_with(x, y, &mut reused);
                    let fresh = measure.compute(x, y);
                    assert_eq!(
                        with_reuse.to_bits(),
                        fresh.to_bits(),
                        "{measure:?} diverged under scratch reuse"
                    );
                }
            }
        }
    }

    #[test]
    fn lcss_partial_overlap() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [1.0, 2.0];
        // Subsequence [1, 2] matches fully against the shorter series.
        assert_eq!(lcss(&a, &b, 0.01), 0.0);
    }
}
