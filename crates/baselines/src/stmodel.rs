//! The configurable deep spatio-temporal baseline family.
//!
//! One implementation covers six of the paper's comparison models:
//!
//! | kind        | spatial (GCN) | temporal (LSTM) | recurrent imputation |
//! |-------------|---------------|-----------------|----------------------|
//! | `FcLstm`    |               | ✓               |                      |
//! | `FcGcn`     | ✓             |                 |                      |
//! | `GcnLstm`   | ✓             | ✓               |                      |
//! | `FcLstmI`   |               | ✓               | ✓ (≈ BRITS)          |
//! | `FcGcnI`    | ✓             |                 | ✓                    |
//! | `GcnLstmI`  | ✓             | ✓               | ✓ (RIHGCN w/o HGCN)  |
//!
//! Non-imputing variants expect mean-filled inputs (see
//! [`mean_fill_sample`]); imputing variants run the same bi-directional
//! recurrent-imputation flow as RIHGCN, but with at most the single
//! geographic graph.

use rihgcn_core::{Forecaster, Imputer};
use st_autodiff::Var;
use st_data::{TrafficDataset, WindowSample};
use st_graph::gaussian_adjacency;
use st_graph::scaled_laplacian_from_adjacency;
use st_nn::{Activation, ChebGcn, Linear, LstmCell, ParamStore, Session};
use st_tensor::{rng, Matrix};

/// Which of the six baseline architectures to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// LSTM only, mean-filled inputs.
    FcLstm,
    /// GCN only, mean-filled inputs.
    FcGcn,
    /// GCN + LSTM, mean-filled inputs.
    GcnLstm,
    /// LSTM with bi-directional recurrent imputation (BRITS-like).
    FcLstmI,
    /// GCN with recurrent imputation.
    FcGcnI,
    /// GCN + LSTM with recurrent imputation (RIHGCN minus temporal graphs).
    GcnLstmI,
}

impl BaselineKind {
    /// Whether the architecture has a graph-convolution block.
    pub fn uses_gcn(self) -> bool {
        !matches!(self, BaselineKind::FcLstm | BaselineKind::FcLstmI)
    }

    /// Whether the architecture has a recurrent (LSTM) block.
    pub fn uses_lstm(self) -> bool {
        !matches!(self, BaselineKind::FcGcn | BaselineKind::FcGcnI)
    }

    /// Whether the model runs the recurrent-imputation flow.
    pub fn imputing(self) -> bool {
        matches!(
            self,
            BaselineKind::FcLstmI | BaselineKind::FcGcnI | BaselineKind::GcnLstmI
        )
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::FcLstm => "FC-LSTM",
            BaselineKind::FcGcn => "FC-GCN",
            BaselineKind::GcnLstm => "GCN-LSTM",
            BaselineKind::FcLstmI => "FC-LSTM-I",
            BaselineKind::FcGcnI => "FC-GCN-I",
            BaselineKind::GcnLstmI => "GCN-LSTM-I",
        }
    }

    /// All six kinds, in the paper's table order.
    pub fn all() -> [BaselineKind; 6] {
        [
            BaselineKind::FcLstm,
            BaselineKind::FcGcn,
            BaselineKind::GcnLstm,
            BaselineKind::FcLstmI,
            BaselineKind::FcGcnI,
            BaselineKind::GcnLstmI,
        ]
    }
}

/// Hyper-parameters shared by the baseline family.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// GCN filter count.
    pub gcn_dim: usize,
    /// LSTM hidden width.
    pub lstm_dim: usize,
    /// Chebyshev order.
    pub cheb_k: usize,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Imputation-loss weight (imputing variants only).
    pub lambda: f64,
    /// Adjacency sparsity threshold.
    pub epsilon: f64,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            gcn_dim: 12,
            lstm_dim: 24,
            cheb_k: 3,
            history: 12,
            horizon: 12,
            lambda: 1.0,
            epsilon: 0.1,
            seed: 29,
        }
    }
}

struct DirectionCells {
    lstm: Option<LstmCell>,
    est_head: Linear,
}

/// A member of the deep-baseline family. See the module docs for the
/// architecture table.
pub struct StBaseline {
    store: ParamStore,
    kind: BaselineKind,
    cfg: BaselineConfig,
    gcn: Option<ChebGcn>,
    laplacian: Option<Matrix>,
    fwd_lstm: Option<LstmCell>,
    fwd_est: Option<Linear>,
    bwd: Option<DirectionCells>,
    pred_head: Linear,
    num_nodes: usize,
    num_features: usize,
}

impl std::fmt::Debug for StBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StBaseline({}, {} params)",
            self.kind.name(),
            self.store.num_scalars()
        )
    }
}

impl StBaseline {
    /// Builds the baseline for a dataset's road network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn from_dataset(train: &TrafficDataset, kind: BaselineKind, cfg: BaselineConfig) -> Self {
        assert!(
            cfg.history > 0 && cfg.horizon > 0,
            "window sizes must be positive"
        );
        let n = train.num_nodes();
        let d = train.num_features();
        let mut init = rng(cfg.seed);
        let mut store = ParamStore::new();

        let (gcn, laplacian) = if kind.uses_gcn() {
            let adj = gaussian_adjacency(&train.network.road_distance_matrix(), None, cfg.epsilon);
            let lap = scaled_laplacian_from_adjacency(&adj);
            let gcn = ChebGcn::new(
                &mut store,
                &mut init,
                d,
                cfg.gcn_dim,
                cfg.cheb_k,
                Activation::Relu,
                "gcn",
            );
            (Some(gcn), Some(lap))
        } else {
            (None, None)
        };

        let s_width = if kind.uses_gcn() { cfg.gcn_dim } else { d };
        let z_width = z_width_for(kind, &cfg, d);
        let lstm_in = if kind.imputing() {
            s_width + d
        } else {
            s_width
        };

        let fwd_lstm = kind
            .uses_lstm()
            .then(|| LstmCell::new(&mut store, &mut init, lstm_in, cfg.lstm_dim, "fwd.lstm"));
        let fwd_est = kind
            .imputing()
            .then(|| Linear::new(&mut store, &mut init, z_width, d, "fwd.est"));
        // Imputing variants run bi-directionally, like RIHGCN / BRITS.
        let bwd = kind.imputing().then(|| DirectionCells {
            lstm: kind
                .uses_lstm()
                .then(|| LstmCell::new(&mut store, &mut init, lstm_in, cfg.lstm_dim, "bwd.lstm")),
            est_head: Linear::new(&mut store, &mut init, z_width, d, "bwd.est"),
        });

        let dirs = if kind.imputing() { 2 } else { 1 };
        let pred_head = Linear::new(
            &mut store,
            &mut init,
            cfg.history * dirs * z_width,
            d * cfg.horizon,
            "pred",
        );

        Self {
            store,
            kind,
            cfg,
            gcn,
            laplacian,
            fwd_lstm,
            fwd_est,
            bwd,
            pred_head,
            num_nodes: n,
            num_features: d,
        }
    }

    /// The architecture variant.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Spatial block: GCN embedding or the raw input.
    fn embed(&self, sess: &mut Session, x: Var) -> Var {
        match (&self.gcn, &self.laplacian) {
            (Some(gcn), Some(lap)) => gcn.forward(sess, &self.store, lap, x),
            _ => x,
        }
    }

    /// One directional pass; `lstm`/`est` choose the direction's cells.
    fn run_direction(
        &self,
        sess: &mut Session,
        sample: &WindowSample,
        lstm: Option<&LstmCell>,
        est: Option<&Linear>,
        reverse: bool,
    ) -> (Vec<Var>, Vec<Var>) {
        let t_len = self.cfg.history;
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };
        let imputing = self.kind.imputing();

        let mut z: Vec<Option<Var>> = vec![None; t_len];
        let mut estimates: Vec<Option<Var>> = vec![None; t_len];
        let mut est_prev = sess.constant(Matrix::zeros(self.num_nodes, self.num_features));
        let mut state = lstm.map(|cell| cell.zero_state(sess, self.num_nodes));

        for &t in &order {
            estimates[t] = Some(est_prev);
            let x_t = if imputing {
                let obs = sess.constant(sample.inputs[t].clone());
                let inv_mask = sess.constant(sample.masks[t].map(|m| 1.0 - m));
                let est_part = sess.tape.mul(inv_mask, est_prev);
                sess.tape.add(obs, est_part)
            } else {
                // Mean-filled inputs are expected to be baked into the sample.
                sess.constant(sample.inputs[t].clone())
            };

            let s = self.embed(sess, x_t);
            let z_t = if let (Some(cell), Some(state_ref)) = (lstm, state.as_mut()) {
                let lstm_in = if imputing {
                    let mask_c = sess.constant(sample.masks[t].clone());
                    sess.tape.concat_cols(s, mask_c)
                } else {
                    s
                };
                *state_ref = cell.step(sess, &self.store, lstm_in, state_ref);
                if self.kind.uses_gcn() {
                    sess.tape.concat_cols(s, state_ref.h)
                } else {
                    state_ref.h
                }
            } else {
                s
            };
            z[t] = Some(z_t);
            if let Some(head) = est {
                est_prev = head.forward(sess, &self.store, z_t);
            }
        }
        (
            z.into_iter().map(|v| v.expect("visited")).collect(),
            estimates.into_iter().map(|v| v.expect("visited")).collect(),
        )
    }

    fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> (Vec<Var>, Vec<Var>, Var) {
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );
        let t_len = self.cfg.history;

        let (fz, fe) = self.run_direction(
            sess,
            sample,
            self.fwd_lstm.as_ref(),
            self.fwd_est.as_ref(),
            false,
        );
        let bwd_run = self.bwd.as_ref().map(|cells| {
            self.run_direction(
                sess,
                sample,
                cells.lstm.as_ref(),
                Some(&cells.est_head),
                true,
            )
        });

        // Imputation estimates and loss (imputing variants only).
        let mut estimates = Vec::with_capacity(t_len);
        let mut imp_terms = Vec::new();
        if self.kind.imputing() {
            for t in 0..t_len {
                let est = match &bwd_run {
                    Some((_, be)) => {
                        let s = sess.tape.add(fe[t], be[t]);
                        sess.tape.scale(s, 0.5)
                    }
                    None => fe[t],
                };
                estimates.push(est);
                let target = sess.constant(sample.inputs[t].clone());
                imp_terms.push(sess.tape.masked_mae(est, target, &sample.masks[t]));
                if let Some((_, be)) = &bwd_run {
                    let inv = sample.masks[t].map(|m| 1.0 - m);
                    imp_terms.push(sess.tape.masked_mae(fe[t], be[t], &inv));
                }
            }
        }

        // Prediction head over stacked hidden states.
        let mut wide: Option<Var> = None;
        for t in 0..t_len {
            let z_t = match &bwd_run {
                Some((bz, _)) => sess.tape.concat_cols(fz[t], bz[t]),
                None => fz[t],
            };
            wide = Some(match wide {
                Some(w) => sess.tape.concat_cols(w, z_t),
                None => z_t,
            });
        }
        let pred_flat = self
            .pred_head
            .forward(sess, &self.store, wide.expect("non-empty history"));

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut pred_terms = Vec::with_capacity(self.cfg.horizon);
        for h in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, h * d, (h + 1) * d);
            let target = sess.constant(sample.targets[h].clone());
            pred_terms.push(sess.tape.masked_mae(step, target, &sample.target_masks[h]));
            predictions.push(step);
        }
        let mut loss = sum_scaled(sess, &pred_terms, 1.0 / self.cfg.horizon as f64);
        if !imp_terms.is_empty() {
            let imp = sum_scaled(sess, &imp_terms, self.cfg.lambda / t_len as f64);
            loss = sess.tape.add(loss, imp);
        }
        (predictions, estimates, loss)
    }
}

fn z_width_for(kind: BaselineKind, cfg: &BaselineConfig, d: usize) -> usize {
    match (kind.uses_gcn(), kind.uses_lstm()) {
        (true, true) => cfg.gcn_dim + cfg.lstm_dim,
        (true, false) => cfg.gcn_dim,
        (false, true) => cfg.lstm_dim,
        (false, false) => d,
    }
}

fn sum_scaled(sess: &mut Session, terms: &[Var], scale: f64) -> Var {
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = sess.tape.add(acc, t);
    }
    sess.tape.scale(acc, scale)
}

impl Forecaster for StBaseline {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, _, loss) = self.run_sample(&mut sess, sample);
        let value = sess.tape.value(loss)[(0, 0)];
        sess.backward(loss);
        sess.write_grads(&mut self.store);
        value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, _, loss) = self.run_sample(&mut sess, sample);
        sess.tape.value(loss)[(0, 0)]
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (preds, _, _) = self.run_sample(&mut sess, sample);
        preds.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

impl Imputer for StBaseline {
    /// Imputation estimates; meaningful only for `-I` variants (others
    /// return zero estimates, matching their lack of an imputation path).
    fn impute(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (_, ests, _) = self.run_sample(&mut sess, sample);
        if ests.is_empty() {
            return vec![Matrix::zeros(self.num_nodes, self.num_features); sample.history_len()];
        }
        ests.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

/// Replaces hidden entries of a sample's inputs with the per-(node, feature)
/// mean of the window's observed values (global mean 0 in normalised space
/// when a series has no observations) — the paper's preprocessing for all
/// non-imputing baselines.
pub fn mean_fill_sample(sample: &WindowSample) -> WindowSample {
    let n = sample.inputs[0].rows();
    let d = sample.inputs[0].cols();
    let t_len = sample.history_len();
    let mut sums = Matrix::zeros(n, d);
    let mut counts = Matrix::zeros(n, d);
    for t in 0..t_len {
        for r in 0..n {
            for c in 0..d {
                if sample.masks[t][(r, c)] != 0.0 {
                    sums[(r, c)] += sample.inputs[t][(r, c)];
                    counts[(r, c)] += 1.0;
                }
            }
        }
    }
    let means = Matrix::from_fn(n, d, |r, c| {
        if counts[(r, c)] > 0.0 {
            sums[(r, c)] / counts[(r, c)]
        } else {
            0.0
        }
    });
    let mut out = sample.clone();
    for t in 0..t_len {
        out.inputs[t] = Matrix::from_fn(n, d, |r, c| {
            if sample.masks[t][(r, c)] != 0.0 {
                sample.inputs[t][(r, c)]
            } else {
                means[(r, c)]
            }
        });
    }
    out
}

/// Applies [`mean_fill_sample`] to a whole set of windows.
pub fn mean_fill_samples(samples: &[WindowSample]) -> Vec<WindowSample> {
    samples.iter().map(mean_fill_sample).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rihgcn_core::{fit, prepare_split, TrainConfig};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny() -> (TrafficDataset, BaselineConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.4, &mut rng(9));
        let cfg = BaselineConfig {
            gcn_dim: 4,
            lstm_dim: 5,
            cheb_k: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn all_kinds_build_and_forward() {
        let (ds, cfg) = tiny();
        let sampler = WindowSampler::new(4, 2, 1);
        let sample = sampler.window_at(&ds, 0);
        for kind in BaselineKind::all() {
            let model = StBaseline::from_dataset(&ds, kind, cfg.clone());
            let preds = model.predict(&sample);
            assert_eq!(preds.len(), 2, "{}", kind.name());
            assert_eq!(preds[0].shape(), (4, 4), "{}", kind.name());
            assert!(preds.iter().all(Matrix::is_finite), "{}", kind.name());
            assert!(model.loss(&sample).is_finite(), "{}", kind.name());
        }
    }

    #[test]
    fn kind_flags_consistent() {
        use BaselineKind::*;
        assert!(!FcLstm.uses_gcn() && FcLstm.uses_lstm() && !FcLstm.imputing());
        assert!(FcGcn.uses_gcn() && !FcGcn.uses_lstm() && !FcGcn.imputing());
        assert!(GcnLstmI.uses_gcn() && GcnLstmI.uses_lstm() && GcnLstmI.imputing());
        assert!(FcGcnI.imputing() && !FcGcnI.uses_lstm());
    }

    #[test]
    fn imputing_variants_produce_estimates() {
        let (ds, cfg) = tiny();
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 5);
        let model = StBaseline::from_dataset(&ds, BaselineKind::FcLstmI, cfg.clone());
        let ests = model.impute(&sample);
        assert_eq!(ests.len(), 4);
        // Non-imputing variants return zeros.
        let plain = StBaseline::from_dataset(&ds, BaselineKind::FcLstm, cfg);
        let zeros = plain.impute(&sample);
        assert!(zeros.iter().all(|m| m.max_abs() == 0.0));
    }

    #[test]
    fn one_epoch_of_training_reduces_loss() {
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let sampler = WindowSampler::new(4, 2, 12);
        let train: Vec<_> = sampler.sample(&norm.train).into_iter().take(6).collect();
        for kind in [BaselineKind::GcnLstm, BaselineKind::GcnLstmI] {
            let train_set = if kind.imputing() {
                train.clone()
            } else {
                mean_fill_samples(&train)
            };
            let mut model = StBaseline::from_dataset(&norm.train, kind, cfg.clone());
            let tc = TrainConfig {
                max_epochs: 4,
                batch_size: 3,
                learning_rate: 3e-3,
                ..Default::default()
            };
            let report = fit(&mut model, &train_set, &[], &tc);
            let first = report.train_losses[0];
            let last = *report.train_losses.last().unwrap();
            assert!(last < first, "{}: {first} → {last}", kind.name());
        }
    }

    #[test]
    fn mean_fill_uses_window_statistics() {
        let (ds, _) = tiny();
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let filled = mean_fill_sample(&sample);
        for t in 0..4 {
            for r in 0..4 {
                for c in 0..4 {
                    if sample.masks[t][(r, c)] != 0.0 {
                        assert_eq!(filled.inputs[t][(r, c)], sample.inputs[t][(r, c)]);
                    } else {
                        // Filled with a finite value, not left at zero-by-mask.
                        assert!(filled.inputs[t][(r, c)].is_finite());
                    }
                }
            }
        }
        // Masks and targets unchanged.
        assert_eq!(filled.masks, sample.masks);
        assert_eq!(filled.targets, sample.targets);
    }

    #[test]
    fn parameter_counts_ordered_by_capacity() {
        let (ds, cfg) = tiny();
        let lstm = StBaseline::from_dataset(&ds, BaselineKind::FcLstm, cfg.clone());
        let gcn_lstm = StBaseline::from_dataset(&ds, BaselineKind::GcnLstm, cfg.clone());
        let gcn_lstm_i = StBaseline::from_dataset(&ds, BaselineKind::GcnLstmI, cfg);
        assert!(gcn_lstm.num_parameters() > lstm.num_parameters());
        assert!(gcn_lstm_i.num_parameters() > gcn_lstm.num_parameters());
    }
}
