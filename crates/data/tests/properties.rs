//! Property-based tests (via `st-check`) for the masking, normalisation
//! and windowing primitives: mask rates land within statistical tolerance,
//! Z-score round-trips to identity on observed entries, and sliding
//! windows never read across a chronological split boundary.

use st_check::{prop_assert, prop_assume, Check, Gen};
use st_data::{drop_observed, holdout_split, missing_rate, TrafficDataset, WindowSampler, ZScore};
use st_graph::RoadNetwork;
use st_tensor::Tensor3;

#[test]
fn drop_observed_rate_within_tolerance() {
    Check::new("drop_observed_rate_within_tolerance")
        .cases(48)
        .run(
            |g: &mut Gen| {
                let n = g.usize_in(4, 10);
                let d = g.usize_in(1, 3);
                let t = g.usize_in(200, 600);
                let rate = g.f64_in(0.05, 0.85);
                let seed = g.u64_in(0, u64::MAX - 1);
                ((n, d, t), (rate, seed))
            },
            |&((n, d, t), (rate, seed))| {
                let mask = Tensor3::ones(n, d, t);
                let dropped = drop_observed(&mask, rate, &mut st_tensor::rng(seed));
                let got = missing_rate(&dropped);
                // Binomial: the observed rate concentrates around `rate`
                // with std sqrt(p(1-p)/len); 5 sigma keeps flakes out.
                let len = (n * d * t) as f64;
                let tol = 5.0 * (rate * (1.0 - rate) / len).sqrt();
                prop_assert!(
                    (got - rate).abs() <= tol,
                    "rate {got} strayed from target {rate} (tolerance {tol})"
                );
                Ok(())
            },
        );
}

#[test]
fn drop_observed_never_resurrects_and_only_thins() {
    Check::new("drop_observed_never_resurrects_and_only_thins")
        .cases(48)
        .run(
            |g: &mut Gen| {
                let n = g.usize_in(2, 6);
                let t = g.usize_in(20, 120);
                let prior = g.f64_in(0.0, 0.6);
                let rate = g.f64_in(0.0, 1.0);
                let seed = g.u64_in(0, u64::MAX - 1);
                ((n, t), (prior, rate, seed))
            },
            |&((n, t), (prior, rate, seed))| {
                let mut rng = st_tensor::rng(seed);
                let mask = Tensor3::from_fn(
                    n,
                    2,
                    t,
                    |_, _, _| if rng.gen_bool(prior) { 0.0 } else { 1.0 },
                );
                let dropped = drop_observed(&mask, rate, &mut rng);
                for (before, after) in mask.as_slice().iter().zip(dropped.as_slice()) {
                    prop_assert!(
                        *after <= *before,
                        "dropping resurrected a missing entry ({before} -> {after})"
                    );
                }
                Ok(())
            },
        );
}

#[test]
fn holdout_split_partitions_the_observed_entries() {
    Check::new("holdout_split_partitions_the_observed_entries")
        .cases(48)
        .run(
            |g: &mut Gen| {
                let n = g.usize_in(2, 6);
                let t = g.usize_in(20, 120);
                let prior = g.f64_in(0.0, 0.5);
                let holdout = g.f64_in(0.0, 1.0);
                let seed = g.u64_in(0, u64::MAX - 1);
                ((n, t), (prior, holdout, seed))
            },
            |&((n, t), (prior, holdout, seed))| {
                let mut rng = st_tensor::rng(seed);
                let mask = Tensor3::from_fn(
                    n,
                    1,
                    t,
                    |_, _, _| if rng.gen_bool(prior) { 0.0 } else { 1.0 },
                );
                let (train, hold) = holdout_split(&mask, holdout, &mut rng);
                let overlap = train.zip_map(&hold, |a, b| a * b);
                prop_assert!(
                    overlap.as_slice().iter().all(|&v| v == 0.0),
                    "train and holdout masks overlap"
                );
                let union = train.zip_map(&hold, |a, b| a + b);
                prop_assert!(union == mask, "union of the two masks must equal the input");
                Ok(())
            },
        );
}

#[test]
fn zscore_round_trips_on_observed_entries() {
    Check::new("zscore_round_trips_on_observed_entries")
        .cases(64)
        .run(
            |g: &mut Gen| {
                let n = g.usize_in(1, 5);
                let d = g.usize_in(1, 4);
                let t = g.usize_in(2, 40);
                let scale = g.f64_in(0.1, 500.0);
                let values = g.tensor3(n, d, t, -scale, scale);
                let seed = g.u64_in(0, u64::MAX - 1);
                let keep = g.f64_in(0.2, 1.0);
                (values, seed, keep)
            },
            |(values, seed, keep)| {
                let (n, d, t) = values.shape();
                let mut rng = st_tensor::rng(*seed);
                let mask = Tensor3::from_fn(
                    n,
                    d,
                    t,
                    |_, _, _| if rng.gen_bool(*keep) { 1.0 } else { 0.0 },
                );
                let z = ZScore::fit(values, &mask);
                let back = z.invert(&z.apply(values));
                for ((v, b), m) in values
                    .as_slice()
                    .iter()
                    .zip(back.as_slice())
                    .zip(mask.as_slice())
                {
                    if *m != 0.0 {
                        let tol = 1e-9 * v.abs().max(1.0);
                        prop_assert!((v - b).abs() <= tol, "observed entry {v} came back as {b}");
                    }
                }
                Ok(())
            },
        );
}

#[test]
fn zscore_statistics_come_from_observed_entries_only() {
    Check::new("zscore_statistics_come_from_observed_entries_only")
        .cases(48)
        .run(
            |g: &mut Gen| {
                let n = g.usize_in(2, 5);
                let t = g.usize_in(4, 40);
                let values = g.tensor3(n, 1, t, -50.0, 50.0);
                let poison = g.f64_in(1e6, 1e9);
                let seed = g.u64_in(0, u64::MAX - 1);
                (values, poison, seed)
            },
            |(values, poison, seed)| {
                // Hide some entries, replace them with garbage: the fitted
                // statistics must not move at all.
                let (n, d, t) = values.shape();
                let mut rng = st_tensor::rng(*seed);
                let mask =
                    Tensor3::from_fn(n, d, t, |_, _, _| if rng.gen_bool(0.4) { 0.0 } else { 1.0 });
                prop_assume!(mask.as_slice().iter().any(|&m| m != 0.0));
                let clean = ZScore::fit(values, &mask);
                let poisoned_values =
                    values.zip_map(&mask, |v, m| if m != 0.0 { v } else { *poison });
                let poisoned = ZScore::fit(&poisoned_values, &mask);
                prop_assert!(
                    clean == poisoned,
                    "hidden entries leaked into the fitted statistics"
                );
                Ok(())
            },
        );
}

#[test]
fn windows_never_read_across_split_boundaries() {
    Check::new("windows_never_read_across_split_boundaries")
        .cases(48)
        .run(
            |g: &mut Gen| {
                let total = g.usize_in(30, 120);
                let history = g.usize_in(1, 6);
                let horizon = g.usize_in(1, 6);
                let stride = g.usize_in(1, 5);
                let train_frac = g.f64_in(0.3, 0.6);
                let val_frac = g.f64_in(0.1, 0.3);
                ((total, history, horizon, stride), (train_frac, val_frac))
            },
            |&((total, history, horizon, stride), (train_frac, val_frac))| {
                // Values encode their absolute timestamp, so any read that
                // crossed a split boundary would surface as an out-of-range
                // encoded time.
                let values =
                    Tensor3::from_fn(2, 1, total, |node, _, tt| (node * 10_000 + tt) as f64);
                let ds = TrafficDataset::new(
                    "prop",
                    values,
                    Tensor3::ones(2, 1, total),
                    RoadNetwork::corridor(2, 1.0),
                    5,
                );
                let split = ds.split_with_ratios(train_frac, val_frac);
                let sampler = WindowSampler::new(history, horizon, stride);

                let mut offset = 0usize;
                for part in [&split.train, &split.val, &split.test] {
                    let len = part.num_times();
                    for w in sampler.sample(part) {
                        prop_assert!(
                            w.start + history + horizon <= len,
                            "window [{}, {}) overruns its split of length {len}",
                            w.start,
                            w.start + history + horizon
                        );
                        // Every value the window carries must have been
                        // taken from inside this split's absolute range.
                        for (i, m) in w.truths.iter().chain(w.targets.iter()).enumerate() {
                            let encoded = m[(0, 0)] as usize;
                            prop_assert!(
                                encoded == offset + w.start + i,
                                "window step {i} read absolute time {encoded}, \
                                 expected {} (split offset {offset})",
                                offset + w.start + i
                            );
                        }
                    }
                    offset += len;
                }
                prop_assert!(offset == total, "splits must tile the timeline");
                Ok(())
            },
        );
}
