//! Lock-free service counters rendered in a Prometheus-style text format.

use std::sync::atomic::{AtomicU64, Ordering};

/// Routes the service distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /observe`
    Observe,
    /// `GET /forecast`
    Forecast,
    /// `GET /imputed`
    Imputed,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /admin/shutdown`
    Shutdown,
    /// Anything else (404/405 traffic).
    Other,
}

const ROUTES: [(Route, &str); 7] = [
    (Route::Observe, "observe"),
    (Route::Forecast, "forecast"),
    (Route::Imputed, "imputed"),
    (Route::Healthz, "healthz"),
    (Route::Metrics, "metrics"),
    (Route::Shutdown, "shutdown"),
    (Route::Other, "other"),
];

fn route_index(route: Route) -> usize {
    ROUTES
        .iter()
        .position(|(r, _)| *r == route)
        .expect("every route is listed")
}

/// Upper bounds (inclusive, in microseconds) of the latency histogram
/// buckets; the last bucket is unbounded.
const BUCKET_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];
const BUCKET_LABELS: [&str; 6] = ["100us", "1ms", "10ms", "100ms", "1s", "+inf"];

/// Atomic counters for the service: per-route request counts, error count,
/// engine cache hits, rejected connections, and a request-latency
/// histogram. All methods are callable from any worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; ROUTES.len()],
    errors: AtomicU64,
    cache_hits: AtomicU64,
    rejected_connections: AtomicU64,
    latency: [AtomicU64; BUCKET_BOUNDS_US.len()],
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request: its route, wall latency, and whether the
    /// response was an error (status ≥ 400).
    pub fn record(&self, route: Route, latency_us: u64, error: bool) {
        self.requests[route_index(route)].fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| latency_us <= b)
            .expect("last bound is u64::MAX");
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a forecast served from the engine's window-version cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection rejected by the max-connections limit.
    pub fn reject_connection(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests across all routes.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total error responses.
    pub fn total_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Total engine cache hits.
    pub fn total_cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Renders all counters as `GET /metrics` plain text (cumulative
    /// histogram buckets, one `st_serve_*` line per counter).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (_, name)) in ROUTES.iter().enumerate() {
            out.push_str(&format!(
                "st_serve_requests_total{{route=\"{name}\"}} {}\n",
                self.requests[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "st_serve_errors_total {}\n",
            self.errors.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "st_serve_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "st_serve_rejected_connections_total {}\n",
            self.rejected_connections.load(Ordering::Relaxed)
        ));
        let mut cumulative = 0u64;
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            cumulative += self.latency[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "st_serve_latency_bucket{{le=\"{label}\"}} {cumulative}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_routes_errors_and_buckets() {
        let m = Metrics::new();
        m.record(Route::Forecast, 50, false);
        m.record(Route::Forecast, 5_000, false);
        m.record(Route::Observe, 500, true);
        m.cache_hit();
        m.reject_connection();
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.total_cache_hits(), 1);
        let text = m.render();
        assert!(text.contains("st_serve_requests_total{route=\"forecast\"} 2"));
        assert!(text.contains("st_serve_requests_total{route=\"observe\"} 1"));
        assert!(text.contains("st_serve_errors_total 1"));
        assert!(text.contains("st_serve_cache_hits_total 1"));
        assert!(text.contains("st_serve_rejected_connections_total 1"));
        // Cumulative: ≤100us holds 1, ≤1ms holds 2, ≤10ms (and beyond) 3.
        assert!(text.contains("st_serve_latency_bucket{le=\"100us\"} 1"));
        assert!(text.contains("st_serve_latency_bucket{le=\"1ms\"} 2"));
        assert!(text.contains("st_serve_latency_bucket{le=\"+inf\"} 3"));
    }

    #[test]
    fn huge_latency_lands_in_last_bucket() {
        let m = Metrics::new();
        m.record(Route::Healthz, u64::MAX, false);
        assert!(m
            .render()
            .contains("st_serve_latency_bucket{le=\"+inf\"} 1"));
        assert!(m.render().contains("st_serve_latency_bucket{le=\"1s\"} 0"));
    }
}
