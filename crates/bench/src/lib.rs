//! Experiment harness reproducing every table and figure of the RIHGCN
//! paper.
//!
//! Each paper artefact has a dedicated binary (run with
//! `cargo run --release -p rihgcn-bench --bin <name>`):
//!
//! | binary             | paper artefact |
//! |--------------------|----------------|
//! | `table1_missing`   | Table I (upper): PeMS vs missing rate |
//! | `table1_horizon`   | Table I (lower): PeMS vs prediction length |
//! | `table2_stampede`  | Table II: Stampede vs prediction length |
//! | `table3_imputation`| RQ2: imputation vs Last/KNN/MF/TD |
//! | `fig3_graphs`      | Figure 3: geographic vs temporal graphs |
//! | `fig4_num_graphs`  | Figure 4: error vs number of temporal graphs |
//! | `fig5_lambda`      | Figure 5: error vs imputation-loss weight λ |
//!
//! The experiment scale is selected by the `RIHGCN_SCALE` environment
//! variable: `quick` (smoke test, seconds), `default` (minutes), or `full`
//! (tens of minutes). Everything is seeded and deterministic at a given
//! scale.

#![warn(missing_docs)]

use rihgcn_baselines::{
    AstgcnConfig, AstgcnLite, BaselineConfig, BaselineKind, DcrnnConfig, DcrnnLite,
    GraphWaveNetConfig, GraphWaveNetLite, HistoricalAverage, StBaseline, StgcnConfig, StgcnLite,
    VarModel,
};
use rihgcn_core::{
    evaluate_imputation, evaluate_prediction, fit, prepare_split, Forecaster, RihgcnConfig,
    RihgcnModel, TrainConfig,
};
use st_data::{
    generate_pems, generate_stampede, DatasetSplit, PemsConfig, StampedeConfig, TrafficDataset,
    WindowSample, WindowSampler, ZScore,
};
use st_nn::{ErrorAccum, Metrics};

pub mod alloc;
pub mod timing;

/// Experiment scale: dataset size, model capacity, training budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Scale label for report headers.
    pub name: &'static str,
    /// PeMS corridor sensors.
    pub pems_nodes: usize,
    /// Simulated days (both datasets).
    pub days: usize,
    /// GCN filter count.
    pub gcn_dim: usize,
    /// LSTM hidden width.
    pub lstm_dim: usize,
    /// Training epochs ceiling.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Stride between training windows.
    pub stride: usize,
    /// Stride between evaluation windows.
    pub eval_stride: usize,
}

impl Scale {
    /// Seconds-long smoke-test scale (used by integration tests).
    pub fn quick() -> Self {
        Self {
            name: "quick",
            pems_nodes: 5,
            days: 4,
            gcn_dim: 4,
            lstm_dim: 6,
            epochs: 2,
            patience: 2,
            batch: 8,
            stride: 48,
            eval_stride: 48,
        }
    }

    /// Minutes-long default scale.
    pub fn default_scale() -> Self {
        Self {
            name: "default",
            pems_nodes: 12,
            days: 14,
            gcn_dim: 12,
            lstm_dim: 24,
            epochs: 30,
            patience: 8,
            batch: 16,
            stride: 8,
            eval_stride: 6,
        }
    }

    /// The most faithful (tens of minutes) scale.
    pub fn full() -> Self {
        Self {
            name: "full",
            pems_nodes: 20,
            days: 28,
            gcn_dim: 16,
            lstm_dim: 32,
            epochs: 40,
            patience: 10,
            batch: 32,
            stride: 3,
            eval_stride: 3,
        }
    }

    /// Reads `RIHGCN_SCALE` (`quick` / `default` / `full`), defaulting to
    /// [`Scale::default_scale`].
    pub fn from_env() -> Self {
        match std::env::var("RIHGCN_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            _ => Self::default_scale(),
        }
    }

    /// Training configuration at this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            max_epochs: self.epochs,
            patience: self.patience,
            batch_size: self.batch,
            ..Default::default()
        }
    }
}

/// A prepared experiment environment on one dataset: normalised split,
/// transform and window samples.
pub struct Bench {
    /// Normalised chronological split.
    pub norm: DatasetSplit,
    /// The fitted Z-score transform.
    pub z: ZScore,
    /// Training windows (normalised, hidden entries zeroed).
    pub train: Vec<WindowSample>,
    /// Validation windows.
    pub val: Vec<WindowSample>,
    /// Test windows.
    pub test: Vec<WindowSample>,
    /// The experiment scale.
    pub scale: Scale,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
}

impl Bench {
    /// Prepares an experiment from a raw dataset (already carrying the
    /// desired missingness).
    pub fn prepare(ds: &TrafficDataset, scale: &Scale, history: usize, horizon: usize) -> Self {
        let split = ds.split_chronological();
        let (norm, z) = prepare_split(&split);
        let train_sampler = WindowSampler::new(history, horizon, scale.stride);
        let eval_sampler = WindowSampler::new(history, horizon, scale.eval_stride);
        Self {
            train: train_sampler.sample(&norm.train),
            val: eval_sampler.sample(&norm.val),
            test: eval_sampler.sample(&norm.test),
            norm,
            z,
            scale: scale.clone(),
            history,
            horizon,
        }
    }
}

/// Generates the synthetic PeMS dataset at a scale with extra missingness.
pub fn pems_at(scale: &Scale, missing_rate: f64, seed: u64) -> TrafficDataset {
    let ds = generate_pems(&PemsConfig {
        num_nodes: scale.pems_nodes,
        num_days: scale.days,
        seed,
        ..Default::default()
    });
    if missing_rate > 0.0 {
        ds.with_extra_missing(missing_rate, &mut st_tensor::rng(seed ^ 0x5eed))
    } else {
        ds
    }
}

/// Generates the synthetic Stampede dataset at a scale (its missingness is
/// intrinsic — no extra drops).
pub fn stampede_at(scale: &Scale, seed: u64) -> TrafficDataset {
    generate_stampede(&StampedeConfig {
        num_days: scale.days,
        seed,
        ..Default::default()
    })
}

/// Every prediction method in the paper's comparison, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Historical average.
    Ha,
    /// Vector autoregression (3 lags).
    Var,
    /// ASTGCN (reduced).
    Astgcn,
    /// Graph WaveNet (reduced).
    GraphWaveNet,
    /// One of the six FC/GCN/LSTM family members.
    Baseline(BaselineKind),
    /// DCRNN (reduced) — an extra comparator beyond the paper's roster.
    Dcrnn,
    /// STGCN (reduced) — an extra comparator beyond the paper's roster.
    Stgcn,
    /// The paper's model.
    Rihgcn,
}

impl Method {
    /// Paper-style row label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Ha => "HA",
            Method::Var => "VAR",
            Method::Astgcn => "ASTGCN",
            Method::GraphWaveNet => "Graph WaveNet",
            Method::Baseline(kind) => kind.name(),
            Method::Dcrnn => "DCRNN",
            Method::Stgcn => "STGCN",
            Method::Rihgcn => "RIHGCN",
        }
    }

    /// The full Table-I/II roster, in paper order.
    pub fn roster() -> Vec<Method> {
        let mut out = vec![
            Method::Ha,
            Method::Var,
            Method::Astgcn,
            Method::GraphWaveNet,
        ];
        out.extend(BaselineKind::all().into_iter().map(Method::Baseline));
        out.push(Method::Rihgcn);
        out
    }

    /// Whether the method has no imputation path and therefore consumes
    /// mean-filled inputs. Mean fill happens in normalised space where the
    /// per-feature global mean is 0, so the zero-filled window samples
    /// already *are* mean-filled — this flag is informational (it marks the
    /// paper's "fill with the mean of observed values" preprocessing).
    pub fn uses_mean_fill(&self) -> bool {
        match self {
            Method::Ha | Method::Var => false, // handle missingness internally
            Method::Astgcn | Method::GraphWaveNet | Method::Dcrnn | Method::Stgcn => true,
            Method::Baseline(kind) => !kind.imputing(),
            Method::Rihgcn => false,
        }
    }
}

/// Trains (when applicable) and evaluates one method on a prepared bench,
/// returning test MAE/RMSE in original units over the full horizon.
pub fn run_method(method: Method, bench: &Bench, temporal_graphs: usize) -> Metrics {
    run_method_horizons(method, bench, temporal_graphs, &[bench.horizon])[0]
}

/// Like [`run_method`] but reports metrics over several horizon prefixes
/// (e.g. 15/30/45/60 minutes = 3/6/9/12 steps) from one trained model.
pub fn run_method_horizons(
    method: Method,
    bench: &Bench,
    temporal_graphs: usize,
    horizons: &[usize],
) -> Vec<Metrics> {
    let scale = &bench.scale;
    let tc = scale.train_config();
    // All samples are in normalised space where hidden entries are zero —
    // i.e. already filled with the global per-feature mean, the paper's
    // preprocessing for every non-imputing model. Imputing models replace
    // those zeros with their own recurrent estimates internally.
    let (train, val, test) = (&bench.train, &bench.val, &bench.test);

    match method {
        Method::Ha => {
            let ha = HistoricalAverage::fit(&bench.norm.train, bench.horizon);
            evaluate_horizons(&ha, test, &bench.z, horizons)
        }
        Method::Var => match VarModel::fit(&bench.norm.train, 3, bench.horizon) {
            Ok(var) => evaluate_horizons(&var, test, &bench.z, horizons),
            Err(_) => vec![
                Metrics {
                    mae: f64::NAN,
                    rmse: f64::NAN
                };
                horizons.len()
            ],
        },
        Method::Astgcn => {
            let cfg = AstgcnConfig {
                gcn_dim: scale.gcn_dim,
                history: bench.history,
                horizon: bench.horizon,
                ..Default::default()
            };
            let mut model = AstgcnLite::from_dataset(&bench.norm.train, cfg);
            fit(&mut model, train, val, &tc);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
        Method::GraphWaveNet => {
            let cfg = GraphWaveNetConfig {
                hidden_dim: scale.gcn_dim,
                history: bench.history,
                horizon: bench.horizon,
                ..Default::default()
            };
            let mut model = GraphWaveNetLite::from_dataset(&bench.norm.train, cfg);
            fit(&mut model, train, val, &tc);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
        Method::Baseline(kind) => {
            let cfg = BaselineConfig {
                gcn_dim: scale.gcn_dim,
                lstm_dim: scale.lstm_dim,
                history: bench.history,
                horizon: bench.horizon,
                ..Default::default()
            };
            let mut model = StBaseline::from_dataset(&bench.norm.train, kind, cfg);
            fit(&mut model, train, val, &tc);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
        Method::Dcrnn => {
            let cfg = DcrnnConfig {
                hidden_dim: scale.gcn_dim,
                history: bench.history,
                horizon: bench.horizon,
                ..Default::default()
            };
            let mut model = DcrnnLite::from_dataset(&bench.norm.train, cfg);
            fit(&mut model, train, val, &tc);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
        Method::Stgcn => {
            let cfg = StgcnConfig {
                hidden_dim: scale.gcn_dim,
                history: bench.history,
                horizon: bench.horizon,
                ..Default::default()
            };
            let mut model = StgcnLite::from_dataset(&bench.norm.train, cfg);
            fit(&mut model, train, val, &tc);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
        Method::Rihgcn => {
            let model = train_rihgcn(bench, temporal_graphs, 1.0);
            evaluate_horizons(&model, test, &bench.z, horizons)
        }
    }
}

/// Trains RIHGCN on a prepared bench with the given number of temporal
/// graphs and λ (shared by the figure studies).
pub fn train_rihgcn(bench: &Bench, temporal_graphs: usize, lambda: f64) -> RihgcnModel {
    let scale = &bench.scale;
    let cfg = RihgcnConfig {
        gcn_dim: scale.gcn_dim,
        lstm_dim: scale.lstm_dim,
        num_temporal_graphs: temporal_graphs,
        history: bench.history,
        horizon: bench.horizon,
        lambda,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&bench.norm.train, cfg);
    let tc = scale.train_config();
    fit(&mut model, &bench.train, &bench.val, &tc);
    model
}

/// Scores a forecaster at several horizon prefixes (in steps) in one pass.
pub fn evaluate_horizons<M: Forecaster>(
    model: &M,
    samples: &[WindowSample],
    z: &ZScore,
    horizons: &[usize],
) -> Vec<Metrics> {
    let mut accs = vec![ErrorAccum::new(); horizons.len()];
    for sample in samples {
        let preds = model.predict(sample);
        for (slot, &h) in horizons.iter().enumerate() {
            for step in 0..h.min(preds.len()) {
                let pred_raw = z.invert_matrix(&preds[step]);
                let target_raw = z.invert_matrix(&sample.targets[step]);
                accs[slot].update(&pred_raw, &target_raw, Some(&sample.target_masks[step]));
            }
        }
    }
    accs.iter().map(ErrorAccum::summary).collect()
}

/// Mean and standard deviation of metrics across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeededMetrics {
    /// Mean MAE across seeds.
    pub mae_mean: f64,
    /// Standard deviation of MAE across seeds.
    pub mae_std: f64,
    /// Mean RMSE across seeds.
    pub rmse_mean: f64,
    /// Standard deviation of RMSE across seeds.
    pub rmse_std: f64,
}

/// Runs one method over several dataset/mask seeds and aggregates the
/// metrics — use for headline claims where run-to-run noise matters.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_method_seeded(
    method: Method,
    scale: &Scale,
    missing_rate: f64,
    temporal_graphs: usize,
    seeds: &[u64],
) -> SeededMetrics {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut maes = Vec::with_capacity(seeds.len());
    let mut rmses = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let ds = pems_at(scale, missing_rate, seed);
        let bench = Bench::prepare(&ds, scale, 12, 12);
        let m = run_method(method, &bench, temporal_graphs);
        maes.push(m.mae);
        rmses.push(m.rmse);
    }
    SeededMetrics {
        mae_mean: st_tensor::stats::mean(&maes),
        mae_std: st_tensor::stats::std_dev(&maes),
        rmse_mean: st_tensor::stats::mean(&rmses),
        rmse_std: st_tensor::stats::std_dev(&rmses),
    }
}

/// Imputation metrics of a trained RIHGCN on the bench's test windows.
pub fn rihgcn_imputation(model: &RihgcnModel, bench: &Bench) -> Metrics {
    evaluate_imputation(model, &bench.test, &bench.z)
}

/// Prediction metrics of a trained RIHGCN on the bench's test windows.
pub fn rihgcn_prediction(model: &RihgcnModel, bench: &Bench) -> Metrics {
    evaluate_prediction(model, &bench.test, &bench.z)
}

/// Prints a metrics table: one row per method, `MAE`/`RMSE` pairs per
/// column group.
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<Metrics>)]) {
    println!("\n=== {title} ===");
    print!("{:<16}", "Method");
    for c in columns {
        print!(" | {:^19}", c);
    }
    println!();
    print!("{:<16}", "");
    for _ in columns {
        print!(" | {:>9} {:>9}", "MAE", "RMSE");
    }
    println!();
    let width = 16 + columns.len() * 22;
    println!("{}", "-".repeat(width));
    for (name, metrics) in rows {
        print!("{name:<16}");
        for m in metrics {
            print!(" | {:>9.4} {:>9.4}", m.mae, m.rmse);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let d = Scale::default_scale();
        let f = Scale::full();
        assert!(q.days < d.days && d.days < f.days);
        assert!(q.epochs <= d.epochs && d.epochs <= f.epochs);
    }

    #[test]
    fn roster_matches_paper_rows() {
        let roster = Method::roster();
        assert_eq!(roster.len(), 11);
        assert_eq!(roster[0].name(), "HA");
        assert_eq!(roster.last().unwrap().name(), "RIHGCN");
    }

    #[test]
    fn mean_fill_flags() {
        assert!(Method::Astgcn.uses_mean_fill());
        assert!(Method::Baseline(BaselineKind::FcLstm).uses_mean_fill());
        assert!(!Method::Baseline(BaselineKind::FcLstmI).uses_mean_fill());
        assert!(!Method::Rihgcn.uses_mean_fill());
        assert!(!Method::Ha.uses_mean_fill());
    }

    #[test]
    fn quick_bench_prepares_windows() {
        let scale = Scale::quick();
        let ds = pems_at(&scale, 0.4, 1);
        let bench = Bench::prepare(&ds, &scale, 6, 3);
        assert!(!bench.train.is_empty());
        assert!(!bench.test.is_empty());
        assert_eq!(bench.train[0].history_len(), 6);
        assert_eq!(bench.train[0].horizon_len(), 3);
    }

    #[test]
    fn dcrnn_method_runs() {
        let scale = Scale::quick();
        let ds = pems_at(&scale, 0.3, 3);
        let bench = Bench::prepare(&ds, &scale, 6, 3);
        let m = run_method(Method::Dcrnn, &bench, 0);
        assert!(m.mae.is_finite() && m.mae > 0.0);
        assert_eq!(Method::Dcrnn.name(), "DCRNN");
        assert!(Method::Dcrnn.uses_mean_fill());
        // DCRNN is an extension: not in the paper's roster.
        assert!(!Method::roster().contains(&Method::Dcrnn));
    }

    #[test]
    fn stgcn_method_runs() {
        let scale = Scale::quick();
        let ds = pems_at(&scale, 0.3, 4);
        let bench = Bench::prepare(&ds, &scale, 6, 3);
        let m = run_method(Method::Stgcn, &bench, 0);
        assert!(m.mae.is_finite() && m.mae > 0.0);
        assert!(!Method::roster().contains(&Method::Stgcn));
    }

    #[test]
    fn seeded_runner_aggregates() {
        let scale = Scale::quick();
        let sm = run_method_seeded(Method::Ha, &scale, 0.3, 0, &[1, 2]);
        assert!(sm.mae_mean.is_finite() && sm.mae_mean > 0.0);
        assert!(sm.mae_std >= 0.0);
        assert!(sm.rmse_mean >= sm.mae_mean);
    }

    #[test]
    fn ha_runs_end_to_end_quickly() {
        let scale = Scale::quick();
        let ds = pems_at(&scale, 0.2, 2);
        let bench = Bench::prepare(&ds, &scale, 6, 3);
        let m = run_method(Method::Ha, &bench, 0);
        assert!(m.mae.is_finite() && m.mae > 0.0);
        let per_h = run_method_horizons(Method::Ha, &bench, 0, &[1, 3]);
        assert_eq!(per_h.len(), 2);
    }
}
