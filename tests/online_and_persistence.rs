//! Integration: streaming inference and parameter persistence through the
//! public facade.

use rihgcn::core::{
    fit, load_params, prepare_split, save_params, OnlineForecaster, RihgcnConfig, RihgcnModel,
    TrainConfig,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::rng;

fn tiny_cfg() -> RihgcnConfig {
    RihgcnConfig {
        gcn_dim: 4,
        lstm_dim: 5,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: 4,
        horizon: 2,
        ..Default::default()
    }
}

#[test]
fn save_load_reproduces_forecasts_exactly() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(1));
    let (norm, _z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(4, 2, 24);
    let train = sampler.sample(&norm.train);
    let test = sampler.sample(&norm.test);

    let mut model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let tc = TrainConfig {
        max_epochs: 2,
        batch_size: 4,
        ..Default::default()
    };
    fit(&mut model, &train, &[], &tc);

    let mut buffer = Vec::new();
    save_params(model.params(), &mut buffer).unwrap();

    let mut restored = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    load_params(restored.params_mut(), buffer.as_slice()).unwrap();

    let a = model.forward(&test[0]);
    let b = restored.forward(&test[0]);
    for (x, y) in a.predictions.iter().zip(&b.predictions) {
        assert_eq!(x, y, "restored forecasts must be bit-identical");
    }
    for (x, y) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(x, y, "restored imputations must be bit-identical");
    }
}

#[test]
fn online_forecaster_tracks_batch_model() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(2));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());

    // Batch path: one window sample from raw data, manually normalised by
    // the sampler over the *normalised* dataset.
    let sampler = WindowSampler::new(4, 2, 1);
    let t0 = 100;
    let norm_full = {
        // Normalise the full dataset the same way prepare_split would.
        rihgcn::data::TrafficDataset {
            name: ds.name.clone(),
            values: z.apply(&ds.values),
            mask: ds.mask.clone(),
            network: ds.network.clone(),
            interval_minutes: ds.interval_minutes,
        }
    };
    let sample = sampler.window_at(&norm_full, t0);
    let batch_pred = model.forward(&sample).predictions;

    // Online path: push the same four raw observations.
    let mut online = OnlineForecaster::new(model, z.clone());
    for i in 0..4 {
        let t = t0 + i;
        online.push(
            ds.values.time_slice(t),
            ds.mask.time_slice(t),
            ds.slot_of(t),
        );
    }
    let online_pred = online.forecast().unwrap();

    for (raw, normed) in online_pred.iter().zip(&batch_pred) {
        let denorm_batch = z.invert_matrix(normed);
        assert!(
            raw.max_abs_diff(&denorm_batch) < 1e-9,
            "online and batch forecasts must agree"
        );
    }
}

#[test]
fn online_survives_fully_missing_timestamps() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let (norm, z) = prepare_split(&ds.split_chronological());
    let model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let mut online = OnlineForecaster::new(model, z);
    let zeros = rihgcn::tensor::Matrix::zeros(4, 4);
    for t in 0..4 {
        // No sensor reports anything at all.
        online.push(zeros.clone(), zeros.clone(), t);
    }
    let preds = online.forecast().unwrap();
    assert!(preds.iter().all(|m| m.is_finite()));
}
