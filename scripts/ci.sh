#!/usr/bin/env bash
# Hermetic CI: the workspace must build, test and stay formatted with no
# network access and no registry dependencies. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

# The parallel kernels promise bit-identical results for any worker count;
# exercise the ST_NUM_THREADS environment path at both extremes.
echo "== test (1 worker thread) =="
ST_NUM_THREADS=1 cargo test -q --offline --workspace

echo "== test (4 worker threads) =="
ST_NUM_THREADS=4 cargo test -q --offline --workspace

echo "== bench smoke (serial vs parallel) =="
# One tiny sample per benchmark: checks the harness runs, records the
# serial-vs-parallel comparison, and asserts nothing about speedup (that
# depends on the host's core count).
RIHGCN_BENCH_SAMPLES=1 RIHGCN_BENCH_SAMPLE_MS=20 \
    cargo bench -q --offline -p rihgcn-bench --bench micro >/dev/null

echo "== formatting =="
cargo fmt --check

echo "CI checks passed."
