//! Plain-text wire format for observations and forecast payloads.
//!
//! Floats travel with Rust's shortest-round-trip (`{:?}`) formatting, the
//! same convention as the persist layer, so a value crosses the HTTP
//! boundary **bit-identically** — the loopback parity test depends on it.
//!
//! Observation body (`POST /observe`):
//!
//! ```text
//! slot <s>
//! values <N·F floats, row-major>
//! mask <N·F floats, 0 or 1>
//! ```
//!
//! Forecast / imputed-window payload:
//!
//! ```text
//! version <v>
//! steps <K> nodes <N> features <F>
//! <F floats>      (K·N lines: step 0 node 0, step 0 node 1, …)
//! ```

use st_tensor::Matrix;

/// One decoded observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Time-of-day slot index.
    pub slot: usize,
    /// `N × F` measurements in original units.
    pub values: Matrix,
    /// `N × F` observation mask (1 = observed).
    pub mask: Matrix,
}

fn fmt_row(row: &[f64], out: &mut String) {
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{v:?}"));
    }
}

fn parse_row(line: &str, expected: usize, what: &str) -> Result<Vec<f64>, String> {
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
    let values = values.map_err(|e| format!("{what}: {e}"))?;
    if values.len() != expected {
        return Err(format!(
            "{what}: expected {expected} values, found {}",
            values.len()
        ));
    }
    Ok(values)
}

/// Encodes an observation body.
pub fn format_observation(slot: usize, values: &Matrix, mask: &Matrix) -> String {
    let mut out = format!("slot {slot}\nvalues ");
    fmt_row(values.as_slice(), &mut out);
    out.push_str("\nmask ");
    fmt_row(mask.as_slice(), &mut out);
    out.push('\n');
    out
}

/// Decodes an observation body against the model's `(nodes, features)`.
///
/// # Errors
///
/// Returns a human-readable message on any malformed line or count
/// mismatch (the server maps it to a 400 response).
pub fn parse_observation(body: &str, nodes: usize, features: usize) -> Result<Observation, String> {
    let mut slot: Option<usize> = None;
    let mut values: Option<Vec<f64>> = None;
    let mut mask: Option<Vec<f64>> = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("slot ") {
            slot = Some(rest.trim().parse().map_err(|e| format!("slot: {e}"))?);
        } else if let Some(rest) = line.strip_prefix("values ") {
            values = Some(parse_row(rest, nodes * features, "values")?);
        } else if let Some(rest) = line.strip_prefix("mask ") {
            mask = Some(parse_row(rest, nodes * features, "mask")?);
        } else {
            return Err(format!("unexpected line {line:?} (slot/values/mask)"));
        }
    }
    let slot = slot.ok_or("missing `slot` line")?;
    let values = values.ok_or("missing `values` line")?;
    let mask = mask.ok_or("missing `mask` line")?;
    Ok(Observation {
        slot,
        values: Matrix::from_vec(nodes, features, values),
        mask: Matrix::from_vec(nodes, features, mask),
    })
}

/// Encodes a list of per-step matrices (forecast or imputed window) plus
/// the window version they were computed at.
pub fn format_steps(version: u64, steps: &[Matrix]) -> String {
    let (nodes, features) = steps.first().map(Matrix::shape).unwrap_or((0, 0));
    let mut out = format!(
        "version {version}\nsteps {} nodes {nodes} features {features}\n",
        steps.len()
    );
    for step in steps {
        for node in 0..nodes {
            let row_start = node * features;
            fmt_row(&step.as_slice()[row_start..row_start + features], &mut out);
            out.push('\n');
        }
    }
    out
}

/// Decodes a [`format_steps`] payload.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_steps(text: &str) -> Result<(u64, Vec<Matrix>), String> {
    let mut lines = text.lines();
    let version: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("version "))
        .ok_or("missing `version` line")?
        .trim()
        .parse()
        .map_err(|e| format!("version: {e}"))?;
    let header = lines.next().ok_or("missing `steps` line")?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    let ["steps", k, "nodes", n, "features", f] = parts.as_slice() else {
        return Err(format!("bad steps header: {header:?}"));
    };
    let parse = |v: &str, what: &str| -> Result<usize, String> {
        v.parse().map_err(|e| format!("{what}: {e}"))
    };
    let (k, n, f) = (
        parse(k, "steps")?,
        parse(n, "nodes")?,
        parse(f, "features")?,
    );
    let mut steps = Vec::with_capacity(k);
    for step in 0..k {
        let mut data = Vec::with_capacity(n * f);
        for node in 0..n {
            let line = lines
                .next()
                .ok_or(format!("missing row for step {step} node {node}"))?;
            data.extend(parse_row(line, f, "row")?);
        }
        steps.push(Matrix::from_vec(n, f, data));
    }
    Ok((version, steps))
}

/// Encodes a `POST /admin/load` body: tenant name plus the checkpoint
/// path the server should read.
pub fn format_admin_load(tenant: &str, path: &str) -> String {
    format!("tenant {tenant}\npath {path}\n")
}

/// Decodes a [`format_admin_load`] body into `(tenant, path)`. The path is
/// taken verbatim to the end of its line (it may contain spaces).
///
/// # Errors
///
/// Returns a human-readable message when either line is missing.
pub fn parse_admin_load(body: &str) -> Result<(String, String), String> {
    let mut tenant: Option<&str> = None;
    let mut path: Option<&str> = None;
    for line in body.lines() {
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("tenant ") {
            tenant = Some(rest.trim());
        } else if let Some(rest) = line.strip_prefix("path ") {
            path = Some(rest);
        } else {
            return Err(format!("unexpected line {line:?} (tenant/path)"));
        }
    }
    let tenant = tenant.ok_or("missing `tenant` line")?;
    let path = path.ok_or("missing `path` line")?;
    Ok((tenant.to_string(), path.to_string()))
}

/// Encodes a `POST /admin/unload` body.
pub fn format_admin_unload(tenant: &str) -> String {
    format!("tenant {tenant}\n")
}

/// Decodes a [`format_admin_unload`] body.
///
/// # Errors
///
/// Returns a human-readable message when the tenant line is missing.
pub fn parse_admin_unload(body: &str) -> Result<String, String> {
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("tenant ") {
            return Ok(rest.trim().to_string());
        }
        return Err(format!("unexpected line {line:?} (tenant)"));
    }
    Err("missing `tenant` line".into())
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The JSON error body for requests naming a tenant with no loaded model.
pub fn tenant_error_json(tenant: &str) -> String {
    format!(
        "{{\"error\":\"unknown tenant\",\"tenant\":\"{}\"}}\n",
        json_escape(tenant)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_round_trips_bit_exactly() {
        let values = Matrix::from_fn(3, 2, |r, c| (r as f64 + 0.1) / (c as f64 + 0.7));
        let mask = Matrix::from_fn(3, 2, |r, c| ((r + c) % 2) as f64);
        let body = format_observation(42, &values, &mask);
        let obs = parse_observation(&body, 3, 2).unwrap();
        assert_eq!(obs.slot, 42);
        assert_eq!(obs.values, values);
        assert_eq!(obs.mask, mask);
    }

    #[test]
    fn steps_round_trip_bit_exactly() {
        let steps: Vec<Matrix> = (0..3)
            .map(|s| Matrix::from_fn(4, 2, |r, c| 1.0 / (1.0 + s as f64 + r as f64 * c as f64)))
            .collect();
        let text = format_steps(7, &steps);
        let (version, back) = parse_steps(&text).unwrap();
        assert_eq!(version, 7);
        assert_eq!(back, steps);
    }

    #[test]
    fn parse_observation_rejects_malformed_bodies() {
        assert!(parse_observation("", 2, 2).is_err());
        assert!(parse_observation("slot 1\nvalues 1 2 3 4\n", 2, 2).is_err()); // no mask
        assert!(parse_observation("slot 1\nvalues 1 2 3\nmask 1 1 1 1\n", 2, 2).is_err());
        assert!(parse_observation("slot x\nvalues 1 2 3 4\nmask 1 1 1 1\n", 2, 2).is_err());
        assert!(parse_observation("bogus line\n", 2, 2).is_err());
    }

    #[test]
    fn parse_steps_rejects_malformed_payloads() {
        assert!(parse_steps("").is_err());
        assert!(parse_steps("version 1\n").is_err());
        assert!(parse_steps("version 1\nsteps 1 nodes 2 features 2\n1.0 2.0\n").is_err());
    }

    #[test]
    fn admin_bodies_round_trip() {
        let body = format_admin_load("city-7", "/tmp/models/city 7.ckpt");
        let (tenant, path) = parse_admin_load(&body).unwrap();
        assert_eq!(tenant, "city-7");
        assert_eq!(path, "/tmp/models/city 7.ckpt");
        assert_eq!(
            parse_admin_unload(&format_admin_unload("city-7")).unwrap(),
            "city-7"
        );
        assert!(parse_admin_load("tenant x\n").is_err());
        assert!(parse_admin_load("path /p\n").is_err());
        assert!(parse_admin_unload("").is_err());
        assert!(parse_admin_unload("bogus\n").is_err());
    }

    #[test]
    fn tenant_error_json_is_escaped() {
        assert_eq!(
            tenant_error_json("plain"),
            "{\"error\":\"unknown tenant\",\"tenant\":\"plain\"}\n"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
