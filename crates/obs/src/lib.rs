//! Std-only observability spine for the RIHGCN workspace.
//!
//! Three pillars, all dependency-free and safe to leave compiled into
//! release binaries:
//!
//! * **Structured tracing** ([`span!`], [`trace`]): RAII span guards
//!   recording into lock-free per-thread ring buffers. A global registry
//!   snapshots every thread's ring into a [`trace::TraceSnapshot`], which
//!   renders as a Chrome `trace_event` JSON file
//!   ([`trace::chrome_trace_json`]) or an aggregated per-span-name table
//!   ([`trace::aggregate`] / [`trace::render_table`]).
//! * **Allocation counting** ([`alloc`]): the counting global allocator
//!   used by the memory benchmarks and the trainer's per-epoch allocation
//!   reporting (counters read zero unless a binary installs it).
//! * **Trace validation** ([`json`], [`trace::validate_chrome_trace`]): a
//!   minimal JSON parser so CI and tests can check emitted traces without
//!   external crates.
//!
//! # The `ST_OBS` switch
//!
//! Tracing is **off by default**. It turns on when the `ST_OBS`
//! environment variable is `1`/`true`/`on` at the first span, or when a
//! program calls [`set_enabled`]`(true)` (the `--trace` CLI flag does).
//! When off, a [`span!`] costs one relaxed atomic load and a branch —
//! the workspace's overhead bench (`bench_obs`) holds the disabled path
//! to <2% of training-step wall time.
//!
//! Tracing never touches the traced computation: spans only read a
//! monotonic clock and write to their thread's ring, so enabling it
//! cannot change a single bit of any result. `bench_obs` asserts training
//! losses are bit-identical with tracing on and off, and CI runs the
//! determinism suites under `ST_OBS=1`.
//!
//! # Examples
//!
//! ```
//! st_obs::set_enabled(true);
//! {
//!     let _outer = st_obs::span!("example.outer");
//!     let m = 3usize;
//!     let _inner = st_obs::span!("example.inner", m);
//! }
//! let snap = st_obs::trace::snapshot();
//! assert!(snap.spans.iter().any(|s| s.name == "example.inner"));
//! let json = st_obs::trace::chrome_trace_json(&snap);
//! st_obs::trace::validate_chrome_trace(&json).unwrap();
//! st_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod json;
pub mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state enabled flag: 0 = uninitialised (consult `ST_OBS`),
/// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is currently enabled.
///
/// The fast path — tracing off, environment already consulted — is one
/// relaxed atomic load and a comparison.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("ST_OBS")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    // Racing initialisers agree (the environment is fixed), so a plain
    // store is fine; an explicit `set_enabled` may already have won, in
    // which case keep its value.
    let _ = ENABLED.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    ENABLED.load(Ordering::Relaxed) == 2
}

/// Turns tracing on or off programmatically, overriding `ST_OBS`.
///
/// Spans opened while enabled still record on drop even if tracing is
/// disabled in between (their guard was armed at creation).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}
